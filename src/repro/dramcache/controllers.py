"""Frontside and backside DRAM-cache controllers (Sec. IV-B, Fig. 5).

The **frontside controller (FC)** extends a traditional DRAM controller:
it probes the in-row tags for every request, serves hits, and forwards
misses to the backside controller's queue, stalling when that queue is
full.  It is a 1-cycle FSM.

The **backside controller (BC)** is programmable (3 cycles/command).
For each miss it checks the Miss Status Row for a pending miss to the
same page (duplicates coalesce), allocates an MSR entry (waiting when
the table is full), issues the 4 KiB flash read, selects and evicts a
victim (dirty victims go through a bounded evict buffer and are written
back off the critical path), installs the arriving page, and releases
the MSR entry — firing the install signal that wakes the threads parked
on the miss.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config.system import DramCacheConfig
from repro.dramcache.footprint import FootprintPredictor
from repro.dramcache.msr import MissStatusRow
from repro.dramcache.organization import DramCacheOrganization
from repro.dramcache.timing import DramCacheTiming
from repro.errors import DeviceFailedError, FlashTimeoutError, ProtocolError
from repro.flash.device import FlashDevice
from repro.obs.tracer import active as _tracer_active
from repro.sim import Engine, Ready, Server, Signal, Store, observe, spawn
from repro.stats import CounterSet, LatencyTracker
from repro.units import US


class MissRequest:
    """A DRAM-cache miss travelling from FC to BC.

    ``install_signal`` fires (with this request as payload) once the
    page is resident; every thread that missed on the page waits on it.
    """

    __slots__ = ("page", "is_write", "created_at", "install_signal",
                 "coalesced", "installed_at", "flash_issued_at",
                 "flash_done_at", "fault_stall_ns")

    def __init__(self, engine: Engine, page: int, is_write: bool) -> None:
        self.page = page
        self.is_write = is_write
        self.created_at = engine.now
        self.install_signal = Signal(engine, f"install:{page}")
        self.coalesced = 0
        self.installed_at: Optional[float] = None
        # Lifecycle stamps for the observability layer: when the BC
        # issued the flash read and when the page arrived.  Always
        # recorded (two stores per miss) so the tracer can decompose a
        # parked thread's wait into MSR wait / flash read / install.
        self.flash_issued_at: Optional[float] = None
        self.flash_done_at: Optional[float] = None
        # Time burned on failed flash attempts (timeouts, uncorrectable
        # replies) before the read that finally delivered data; the
        # tracer charges it as the ``fault_stall`` component.
        self.fault_stall_ns = 0.0

    @property
    def fill_latency_ns(self) -> float:
        if self.installed_at is None:
            raise ProtocolError("miss not installed yet")
        return self.installed_at - self.created_at

    def __repr__(self) -> str:
        return f"<MissRequest page={self.page} coalesced={self.coalesced}>"


class AccessResult:
    """Outcome of a frontside-controller access.

    * hit:   ``latency_ns`` is the full in-DRAM hit latency.
    * miss:  ``latency_ns`` is the time until the miss signal reaches
      the requesting core; ``completion`` fires when the page has been
      installed and the access can replay.
    """

    __slots__ = ("hit", "latency_ns", "completion", "coalesced")

    def __init__(self, hit: bool, latency_ns: float,
                 completion: Optional[Signal] = None,
                 coalesced: bool = False) -> None:
        self.hit = hit
        self.latency_ns = latency_ns
        self.completion = completion
        self.coalesced = coalesced

    def __repr__(self) -> str:
        kind = "hit" if self.hit else "miss"
        return f"<AccessResult {kind} {self.latency_ns:.1f} ns>"


class BacksideController:
    """Programmable miss handler between the DRAM cache and flash."""

    def __init__(self, engine: Engine, config: DramCacheConfig,
                 timing: DramCacheTiming,
                 organization: DramCacheOrganization,
                 flash: FlashDevice,
                 admission=None) -> None:
        self.engine = engine
        self.config = config
        self.timing = timing
        self.organization = organization
        self.flash = flash
        # DRAM→flash admission policy (DESIGN.md §4j): None unless the
        # write path is enabled, so dirty evictions keep their original
        # unconditional-writeback branch and goldens stay bit-identical.
        self._admission = admission
        self.footprint: Optional[FootprintPredictor] = None
        if config.footprint_enabled:
            self.footprint = FootprintPredictor(
                region_pages=config.footprint_region_pages,
                safety_blocks=config.footprint_safety_blocks,
            )
        # Blocks fetched for each resident page (footprint training).
        self._fetched_blocks: Dict[int, int] = {}
        self.msr = MissStatusRow(engine, config.msr_entries)
        self.miss_queue = Store(engine, capacity=config.miss_queue_entries,
                                name="bc-miss-queue")
        self.evict_buffer = Server(engine, capacity=config.evict_buffer_entries,
                                   name="bc-evict-buffer")
        self.stats = CounterSet("backside")
        self._tracer = _tracer_active()
        # Resilience path (DESIGN.md §4f): armed only when the flash
        # device runs under fault injection.  Timeout scales off the
        # nominal sense latency so config sweeps keep the ratio.
        self._faults = flash.faults
        self._read_timeout_ns = 0.0
        if self._faults is not None:
            self._read_timeout_ns = (self._faults.config.bc_timeout_factor
                                     * flash.config.read_latency_ns)
        # Bound handles for the per-miss hot path (see CounterSet.counter).
        self._flash_reads = self.stats.counter("flash_reads")
        self._installs = self.stats.counter("installs")
        self.fill_latency = LatencyTracker(exact=False, name="bc-fill")
        self.fill_latency.start_measurement()
        spawn(engine, self._accept_loop(), name="bc-accept")

    # -- admission ------------------------------------------------------------

    def _accept_loop(self):
        """Pop miss requests, gate on MSR capacity, spawn handlers."""
        while True:
            slot = self.miss_queue.get()
            if isinstance(slot, Ready):
                request = slot.item
            else:
                request = yield slot
            # MSR lookup for a pending miss to the same page.
            yield self.timing.backside_command_ns
            while True:
                wait = self.msr.wait_for_free()
                if wait is None:
                    break
                yield wait
            self.msr.allocate(request.page, request.is_write)
            spawn(self.engine, self._handle_miss(request),
                  name=f"bc-miss:{request.page}")

    # -- miss handling -----------------------------------------------------------

    def _issue_flash_read(self, request: MissRequest) -> Signal:
        """Issue the page read to flash.  With the footprint extension
        only the predicted blocks cross the channel/PCIe, cutting
        refill bandwidth."""
        if self.footprint is not None:
            blocks = self.footprint.predict_blocks(request.page)
            self._fetched_blocks[request.page] = blocks
            return self.flash.read(
                request.page, num_bytes=self.footprint.predict_bytes(request.page)
            )
        return self.flash.read(request.page)

    def _handle_miss(self, request: MissRequest):
        # Issue the page read to flash (one BC command).
        yield self.timing.backside_command_ns
        if self._faults is not None:
            yield from self._await_read_resilient(request)
        else:
            read_signal = self._issue_flash_read(request)
            self._flash_reads.incr()
            request.flash_issued_at = self.engine.now

            # While flash works (~50 us), secure space in the target set.
            yield from self._make_room(request.page)

            # Wait for the page to arrive over PCIe.
            yield read_signal
        request.flash_done_at = self.engine.now

        # Install data + tag into the designated set and way.
        yield self.timing.backside_command_ns + self.timing.page_install_ns
        self.organization.install(request.page, dirty=request.is_write)
        request.installed_at = self.engine.now
        self.msr.release(request.page)
        self._installs.incr()
        self.fill_latency.record(request.fill_latency_ns)
        request.install_signal.fire(request)
        if self._tracer is not None:
            self._tracer.complete(
                "bc", "miss", request.created_at, request.installed_at,
                {"page": request.page, "coalesced": request.coalesced},
            )

    def _await_read_resilient(self, request: MissRequest):
        """Issue-with-timeout loop under fault injection.

        Each attempt races the flash completion against a BC deadline
        (:class:`FlashTimeoutError` as the losing payload).  Timed-out
        or uncorrectable attempts are counted, charged to the
        request's ``fault_stall_ns``, and reissued — bounded by
        ``bc_max_reissues`` before :class:`DeviceFailedError` surfaces.
        Late completions of abandoned attempts are dropped by the
        settled guard.  The victim-way reservation overlaps the first
        attempt only; reissues reuse it.
        """
        plan = self._faults
        cfg = plan.config
        flash_stats = self.flash.stats
        attempts = 0
        while True:
            if attempts > 0:
                # Reissue is a fresh BC command.
                yield self.timing.backside_command_ns
            attempt_start = self.engine.now
            read_signal = self._issue_flash_read(request)
            if attempts == 0:
                self._flash_reads.incr()
                request.flash_issued_at = attempt_start
            attempts += 1
            outcome = self._arm_timeout(read_signal, request.page)
            if attempts == 1:
                # While flash works, secure space in the target set.
                yield from self._make_room(request.page)
            payload = yield outcome
            if isinstance(payload, FlashTimeoutError):
                flash_stats.add("bc_timeouts")
            elif getattr(payload, "failed", False):
                flash_stats.add("bc_uncorrectable_replies")
            else:
                return  # data arrived
            stall_ns = self.engine.now - attempt_start
            request.fault_stall_ns += stall_ns
            # Cumulative fault-stall counter: only the resilient path
            # (fault plan active) reaches here, so faults-disabled runs
            # never grow this key and goldens stay bit-identical.
            flash_stats.add("bc_fault_stall_ns", stall_ns)
            self.msr.note_reissue(request.page)
            if 0 < cfg.plane_failure_threshold <= attempts:
                # One page failing attempt after attempt is the
                # controller's evidence the plane is bad: route its
                # reads through the degraded mirror path so the
                # reissue chain terminates.
                plan.mark_plane_failing(self.flash.ftl.plane_of(request.page))
            if attempts > cfg.bc_max_reissues:
                raise DeviceFailedError(
                    f"flash read of page {request.page} failed "
                    f"{attempts} attempts ({cfg.bc_max_reissues} "
                    "reissues allowed): device considered failed"
                )
            flash_stats.add("bc_reissues")
            if self._tracer is not None:
                self._tracer.instant(
                    "bc", "flash_reissue", self.engine.now,
                    {"page": request.page, "attempt": attempts},
                )

    def _arm_timeout(self, read_signal: Signal, page: int) -> Signal:
        """Race ``read_signal`` against the BC deadline.

        Returns a signal that fires with the flash payload when the
        read wins or a :class:`FlashTimeoutError` instance when the
        deadline does.  Whichever side settles first wins; the pending
        timeout event is cancelled on completion (it has neither fired
        nor been cancelled at that point, so the kernel's event
        recycling rules are respected) and a late completion after a
        timeout is silently dropped.
        """
        engine = self.engine
        timeout_ns = self._read_timeout_ns
        outcome = Signal(engine, f"bc-read-outcome:{page}")
        settled = [False]

        def on_timeout() -> None:
            if settled[0]:
                return
            settled[0] = True
            outcome.fire(FlashTimeoutError(
                f"flash read of page {page} exceeded {timeout_ns:.0f} ns"
            ))

        timeout_event = engine.schedule(timeout_ns, on_timeout)

        def on_complete(payload) -> None:
            if settled[0]:
                return  # abandoned attempt finishing late
            settled[0] = True
            engine.cancel(timeout_event)
            outcome.fire(payload)

        observe(read_signal, on_complete)
        return outcome

    def _make_room(self, page: int):
        """Reserve a way, retrying if every way is transiently reserved."""
        while True:
            try:
                evicted = self.organization.reserve_victim(page)
            except ProtocolError:
                # Every way of the set has a refill in flight; wait for
                # one to land and retry.  Rare by construction.
                self.stats.add("set_conflict_retries")
                yield 1.0 * US
                continue
            break
        if evicted is not None and self.footprint is not None:
            fetched = self._fetched_blocks.pop(
                evicted.page, self.footprint.blocks_per_page
            )
            self.footprint.record_eviction(
                evicted.page, evicted.access_count, fetched
            )
        if evicted is not None and evicted.dirty:
            admission = self._admission
            if admission is not None:
                if admission.propagate_writes:
                    # Write-through already programmed every store;
                    # the evicted copy carries no new data.
                    self.flash.stats.add("writeback_elided")
                    return
                if not admission.admit_writeback(evicted.page):
                    # Flashield-style drop: the page never earned
                    # flash admission (too few recent reads); it
                    # refaults from the backing copy instead of
                    # burning a program.  Counted on the flash stats
                    # because BC counters never reach results.
                    self.flash.stats.add("admission_rejects")
                    if self._tracer is not None:
                        self._tracer.instant(
                            "bc", "admission_reject", self.engine.now,
                            {"page": evicted.page})
                    return
            # Copy into the evict buffer (blocking when full), then
            # write back off the critical path.
            grant = self.evict_buffer.acquire()
            if grant is not None:
                self.stats.add("evict_buffer_stalls")
                yield grant
            yield self.timing.page_install_ns  # row read into the buffer
            self.stats.add("dirty_writebacks")
            if self._tracer is not None:
                self._tracer.instant("bc", "writeback", self.engine.now,
                                     {"page": evicted.page})
            spawn(self.engine, self._writeback(evicted.page),
                  name=f"bc-writeback:{evicted.page}")

    def _writeback(self, page: int):
        write_signal = self.flash.write(page)
        yield write_signal
        self.evict_buffer.release()
        self.stats.add("writebacks_completed")

    def write_through(self, page: int) -> None:
        """Write-through admission hook: the FC calls this on every
        store; the program runs through the same bounded evict buffer
        and flash write path as a dirty writeback, off the critical
        path of the store itself."""
        spawn(self.engine, self._write_through_process(page),
              name=f"bc-writethrough:{page}")

    def _write_through_process(self, page: int):
        grant = self.evict_buffer.acquire()
        if grant is not None:
            self.stats.add("evict_buffer_stalls")
            yield grant
        yield self.timing.page_install_ns  # row read into the buffer
        self.stats.add("write_through_writes")
        yield from self._writeback(page)

    @property
    def outstanding_misses(self) -> int:
        return len(self.msr)


class FrontsideController:
    """Hit/miss decision logic in front of the DRAM cache."""

    def __init__(self, engine: Engine, config: DramCacheConfig,
                 timing: DramCacheTiming,
                 organization: DramCacheOrganization,
                 backside: BacksideController,
                 admission=None) -> None:
        self.engine = engine
        self.config = config
        self.timing = timing
        self.organization = organization
        self.backside = backside
        # Write-path admission policy; None on the default path.
        self._admission = admission
        self.stats = CounterSet("frontside")
        # Bound handles for the per-access hot path.
        self._accesses = self.stats.counter("accesses")
        self._hits_result_latency = timing.hit_latency_ns
        # All hits look alike and callers never mutate results, so one
        # shared instance serves every hit.
        self._hit_result = AccessResult(True, timing.hit_latency_ns)
        self._misses = self.stats.counter("misses")
        self._coalesced = self.stats.counter("coalesced_misses")
        # Misses currently pending (page -> MissRequest) so duplicate
        # misses coalesce onto one flash read.
        self._pending: Dict[int, MissRequest] = {}

    def access(self, page: int, is_write: bool = False) -> AccessResult:
        """Probe the cache for one request from the on-chip hierarchy.

        Synchronous decision: hits return immediately with the full
        hit latency; misses return the miss-signal latency plus a
        completion signal that fires when the refill lands.
        """
        self._accesses.incr()
        admission = self._admission
        if admission is not None:
            if is_write:
                # Application stores, window-scoped later by the GC
                # baselines; on the flash stats so they reach results.
                self.backside.flash.stats.add("app_writes")
                if admission.propagate_writes:
                    self.backside.write_through(page)
            else:
                admission.observe_read(page)
        if self.organization.lookup(page, is_write):
            return self._hit_result

        pending = self._pending.get(page)
        if pending is not None:
            pending.coalesced += 1
            if is_write:
                pending.is_write = True
            self._coalesced.incr()
            return AccessResult(
                False, self.timing.miss_detect_ns,
                completion=pending.install_signal, coalesced=True,
            )

        request = MissRequest(self.engine, page, is_write)
        self._pending[page] = request
        self._misses.incr()
        if not self.backside.miss_queue.try_put(request):
            # BC queue full: FC stalls until space frees up; the stall
            # is modelled as a background put so the core still sees
            # the miss signal at the architected latency.
            self.stats.add("bc_queue_stalls")
            spawn(self.engine, self._blocking_put(request), name="fc-stall")
        self._arm_cleanup(request)
        return AccessResult(
            False, self.timing.miss_detect_ns,
            completion=request.install_signal,
        )

    def access_run(self, pages, writes, start: int = 0,
                   stop: Optional[int] = None) -> int:
        """Vector-backend batch probe: leading hits of a planned run.

        Applies the exact side effects :meth:`access` would for each
        leading hit — FC access counter plus the organization's
        lookup effects — and stops *before* the first non-hit, whose
        access (miss counters, coalescing, MSR/BC machinery) the
        caller replays through the scalar :meth:`access`.  Returns the
        number of leading hits.
        """
        hits = self.organization.lookup_many(pages, writes, start, stop)
        if hits:
            self._accesses.add(hits)
        return hits

    def _blocking_put(self, request: MissRequest):
        signal = self.backside.miss_queue.put(request)
        if signal is not None:
            yield signal

    def _arm_cleanup(self, request: MissRequest) -> None:
        def cleanup(_value):
            self._pending.pop(request.page, None)

        _on_fire(request.install_signal, cleanup)

    def miss_ratio(self) -> float:
        return self.stats.ratio("misses", "accesses")


def _on_fire(signal: Signal, callback) -> None:
    """Invoke ``callback(value)`` when ``signal`` fires.

    Lightweight alternative to spawning a whole process just to observe
    a signal.
    """

    class _Observer:
        def _resume(self, value):
            callback(value)

    signal._add_waiter(_Observer())  # type: ignore[arg-type]
