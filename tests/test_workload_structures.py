"""Tests for Zipf, heaps, and the workload data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import (
    HashIndex,
    Masstree,
    PagedHeap,
    RedBlackTree,
    SpreadHeap,
    ZipfianGenerator,
)


class TestZipfianGenerator:
    def test_samples_in_range(self):
        zipf = ZipfianGenerator(100, 1.2, seed=1)
        samples = zipf.sample_array(10_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_skew_concentrates_mass(self):
        zipf = ZipfianGenerator(10_000, 1.3, seed=1, permute=False)
        samples = zipf.sample_array(50_000)
        top_3pct = (samples < 300).mean()
        assert top_3pct > 0.7  # most accesses hit the hot 3%

    def test_coverage_monotone(self):
        zipf = ZipfianGenerator(10_000, 1.3)
        assert zipf.coverage(0.01) < zipf.coverage(0.1) < zipf.coverage(1.0)
        assert zipf.coverage(1.0) == pytest.approx(1.0)

    def test_coverage_matches_empirical(self):
        zipf = ZipfianGenerator(1000, 1.3, seed=3, permute=False)
        analytic = zipf.coverage(0.03)
        samples = zipf.sample_array(100_000)
        empirical = (samples < 30).mean()
        assert abs(analytic - empirical) < 0.02

    def test_permutation_spreads_hot_items(self):
        zipf = ZipfianGenerator(10_000, 1.3, seed=1, permute=True)
        samples = zipf.sample_array(10_000)
        # The hottest item is no longer index 0 with high probability.
        hottest = zipf.rank_of(int(samples[0]))
        assert 0 <= hottest < 10_000

    def test_rank_of_inverts_permutation(self):
        zipf = ZipfianGenerator(100, 1.0, seed=5, permute=True)
        item = zipf.sample()
        rank = zipf.rank_of(item)
        assert zipf._permutation[rank] == item

    def test_zero_skew_is_uniform(self):
        zipf = ZipfianGenerator(100, 0.0, seed=1, permute=False)
        samples = zipf.sample_array(100_000)
        assert abs((samples < 50).mean() - 0.5) < 0.02

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(0, 1.0)
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(10, -1.0)
        with pytest.raises(ConfigurationError):
            ZipfianGenerator(10, 1.0).coverage(0.0)


class TestHeaps:
    def test_paged_heap_packs_objects(self):
        heap = PagedHeap(base_page=10, page_budget=2)
        refs = [heap.allocate(1024) for _ in range(4)]
        assert all(ref.page == 10 for ref in refs)  # 4x 1 KiB fill page 10
        next_ref = heap.allocate(1024)
        assert next_ref.page == 11  # fifth rolls to the next page

    def test_paged_heap_objects_do_not_straddle(self):
        heap = PagedHeap(base_page=0, page_budget=2)
        heap.allocate(3000)
        ref = heap.allocate(3000)  # cannot fit on page 0
        assert ref.page == 1
        assert ref.offset == 0

    def test_paged_heap_budget_enforced(self):
        heap = PagedHeap(base_page=0, page_budget=1)
        heap.allocate(4096)
        with pytest.raises(WorkloadError):
            heap.allocate(1)

    def test_paged_heap_invalid_sizes(self):
        heap = PagedHeap(base_page=0, page_budget=1)
        with pytest.raises(ConfigurationError):
            heap.allocate(0)
        with pytest.raises(ConfigurationError):
            heap.allocate(5000)

    def test_spread_heap_covers_budget(self):
        heap = SpreadHeap(base_page=100, page_budget=10, expected_objects=20)
        pages = [heap.allocate().page for _ in range(20)]
        assert min(pages) == 100
        assert max(pages) == 109
        assert len(set(pages)) == 10

    def test_spread_heap_overflow_clamps(self):
        heap = SpreadHeap(base_page=0, page_budget=4, expected_objects=4)
        pages = [heap.allocate().page for _ in range(8)]
        assert max(pages) == 3


class TestRedBlackTree:
    def make_tree(self, keys):
        tree = RedBlackTree(SpreadHeap(0, 1024, max(len(keys), 1)))
        for key in keys:
            tree.insert(key)
        return tree

    def test_insert_and_search(self):
        tree = self.make_tree(range(100))
        page, path = tree.search(42)
        assert page is not None
        assert len(path) >= 1
        missing, _ = tree.search(1000)
        assert missing is None

    def test_duplicate_insert_rejected(self):
        tree = self.make_tree([1])
        assert not tree.insert(1)
        assert tree.size == 1

    def test_invariants_after_sequential_inserts(self):
        tree = self.make_tree(range(512))
        tree.check_invariants()
        # Balanced: depth is O(log n), not O(n).
        assert tree.depth_of(511) <= 2 * 10  # 2*log2(512)=18

    def test_delete(self):
        tree = self.make_tree(range(64))
        assert tree.delete(10)
        assert not tree.delete(10)
        assert tree.size == 63
        assert tree.search(10)[0] is None
        tree.check_invariants()

    def test_delete_all(self):
        tree = self.make_tree(range(32))
        for key in range(32):
            assert tree.delete(key)
            tree.check_invariants()
        assert tree.size == 0
        assert tree.root is None

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=120),
           st.lists(st.integers(0, 255), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_random_insert_delete_preserves_invariants(self, inserts, deletes):
        tree = RedBlackTree(SpreadHeap(0, 1024, 256))
        present = set()
        for key in inserts:
            inserted = tree.insert(key)
            assert inserted == (key not in present)
            present.add(key)
            tree.check_invariants()
        for key in deletes:
            deleted = tree.delete(key)
            assert deleted == (key in present)
            present.discard(key)
            tree.check_invariants()
        assert tree.size == len(present)
        for key in present:
            assert tree.search(key)[0] is not None


class TestMasstree:
    def make_tree(self, num_keys):
        tree = Masstree(SpreadHeap(0, 1024, max(num_keys // 8, 16)))
        for key in range(num_keys):
            tree.insert(key, value_page=5000 + key)
        return tree

    def test_get_returns_value_and_path(self):
        tree = self.make_tree(500)
        value, path = tree.get(123)
        assert value == 5123
        assert len(path) == tree.height

    def test_missing_key(self):
        tree = self.make_tree(10)
        value, path = tree.get(999)
        assert value is None
        assert path  # the traversal still touched pages

    def test_update_in_place(self):
        tree = self.make_tree(10)
        tree.insert(3, value_page=42)
        assert tree.get(3)[0] == 42
        assert tree.size == 10  # no new key

    def test_splits_grow_height_logarithmically(self):
        tree = self.make_tree(4096)
        assert tree.height <= 5
        tree.check_invariants()

    def test_range_pages(self):
        tree = self.make_tree(500)
        pages = tree.range_pages(100, count=64)
        assert len(pages) >= tree.height

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_random_inserts_preserve_order_invariants(self, keys):
        tree = Masstree(SpreadHeap(0, 256, 64), leaf_capacity=4,
                        interior_fanout=4)
        for key in keys:
            tree.insert(key, value_page=key * 2)
            tree.check_invariants()
        for key in keys:
            assert tree.get(key)[0] == key * 2


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex(64, base_page=0, page_budget=64,
                          expected_entries=100)
        index.insert(5)
        page, path = index.lookup(5)
        assert page is not None
        assert path[0] < 64  # bucket page first
        assert index.lookup(6)[0] is None

    def test_duplicate_insert_idempotent(self):
        index = HashIndex(64, base_page=0, page_budget=64,
                          expected_entries=100)
        index.insert(5)
        index.insert(5)
        assert index.size == 1

    def test_chains_grow_with_load(self):
        index = HashIndex(16, base_page=0, page_budget=64,
                          expected_entries=64)
        for key in range(64):
            index.insert(key)
        assert index.average_chain_length() == pytest.approx(4.0)

    def test_budget_must_fit_buckets(self):
        with pytest.raises(WorkloadError):
            HashIndex(10_000, base_page=0, page_budget=8,
                      expected_entries=10)


class TestMasstreeDelete:
    def make_tree(self, num_keys, leaf=4, fanout=4):
        tree = Masstree(SpreadHeap(0, 4096, 512), leaf_capacity=leaf,
                        interior_fanout=fanout)
        for key in range(num_keys):
            tree.insert(key, 5000 + key)
        return tree

    def test_delete_missing_key(self):
        tree = self.make_tree(10)
        assert not tree.delete(999)
        assert tree.size == 10

    def test_delete_then_lookup(self):
        tree = self.make_tree(100)
        assert tree.delete(50)
        assert tree.get(50)[0] is None
        assert tree.get(51)[0] == 5051
        assert tree.size == 99
        tree.check_invariants()

    def test_delete_all_collapses_tree(self):
        tree = self.make_tree(128)
        for key in range(128):
            assert tree.delete(key)
            tree.check_invariants()
        assert tree.size == 0
        assert tree.height == 1

    def test_reinsert_after_delete(self):
        tree = self.make_tree(64)
        for key in range(0, 64, 2):
            tree.delete(key)
        for key in range(0, 64, 2):
            tree.insert(key, 9000 + key)
        tree.check_invariants()
        for key in range(0, 64, 2):
            assert tree.get(key)[0] == 9000 + key

    @given(st.lists(st.integers(0, 127), min_size=1, max_size=200),
           st.lists(st.integers(0, 127), max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_random_insert_delete_consistency(self, inserts, deletes):
        tree = Masstree(SpreadHeap(0, 4096, 512), leaf_capacity=4,
                        interior_fanout=4)
        expected = {}
        for key in inserts:
            tree.insert(key, key * 3)
            expected[key] = key * 3
            tree.check_invariants()
        for key in deletes:
            deleted = tree.delete(key)
            assert deleted == (key in expected)
            expected.pop(key, None)
            tree.check_invariants()
        assert tree.size == len(expected)
        for key, value in expected.items():
            assert tree.get(key)[0] == value
