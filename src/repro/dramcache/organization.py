"""Set-associative, page-granularity DRAM-cache organization.

The DRAM cache stores 4 KiB pages; each DRAM row is one set holding
``associativity`` ways plus an 8-byte tag per way in the same row
(Sec. IV-B, Fig. 5a).  Tags therefore cost a serialized RAS+CAS before
data access — the timing model in :mod:`repro.dramcache.timing` charges
for that.

This module is purely functional state: lookups, LRU, installs,
reservations (ways claimed for in-flight refills) and evictions.

Tag probes are the single hottest substrate operation in the simulator
(every access, warmup step, and replay goes through them), so each set
maintains a ``page -> Way`` dict for valid tags and another for
in-flight reservations alongside the way list.  The dicts are an
*index*, not the source of truth: LRU and victim selection still walk
the way list, preserving the original tie-breaking order exactly.  Two
invariants keep the views coherent (property-tested in
``tests/test_dramcache_organization.py``):

* a way is in the valid index iff ``way.page is not None``;
* a way is in the reserved index iff ``way.reserved_for is not None``
  (and a reserved way always has ``page is None``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.stats import CounterSet


class Way:
    """One way of one set: a page frame plus tag metadata."""

    __slots__ = ("page", "dirty", "last_touch", "reserved_for",
                 "access_count")

    def __init__(self) -> None:
        self.page: Optional[int] = None
        self.dirty = False
        self.last_touch = 0
        # Logical page this way is reserved for while a refill is in
        # flight; the way cannot be victimized meanwhile.
        self.reserved_for: Optional[int] = None
        # Accesses during the current residency (footprint training).
        self.access_count = 0

    @property
    def valid(self) -> bool:
        return self.page is not None

    @property
    def reserved(self) -> bool:
        return self.reserved_for is not None


class EvictedPage:
    """A victim page pushed out by a refill."""

    __slots__ = ("page", "dirty", "access_count")

    def __init__(self, page: int, dirty: bool, access_count: int = 0) -> None:
        self.page = page
        self.dirty = dirty
        self.access_count = access_count

    def __repr__(self) -> str:
        flag = "dirty" if self.dirty else "clean"
        return f"<EvictedPage {self.page} {flag}>"


class DramCacheOrganization:
    """Tag/data state for the whole DRAM cache."""

    def __init__(self, num_pages: int, associativity: int) -> None:
        if associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if num_pages < associativity:
            raise ConfigurationError("cache smaller than one set")
        self.associativity = associativity
        self.num_sets = num_pages // associativity
        self.capacity_pages = self.num_sets * associativity
        self._sets: List[List[Way]] = [
            [Way() for _ in range(associativity)] for _ in range(self.num_sets)
        ]
        # Per-set tag indexes: page -> Way for valid tags, and
        # reserved_for -> Way for in-flight refills.
        self._tag_index: List[Dict[int, Way]] = [
            {} for _ in range(self.num_sets)
        ]
        self._reserved_index: List[Dict[int, Way]] = [
            {} for _ in range(self.num_sets)
        ]
        # Power-of-two set counts (the common configuration) index with
        # a mask instead of a modulo; identical mapping either way.
        self._set_mask = (self.num_sets - 1
                          if self.num_sets & (self.num_sets - 1) == 0
                          else None)
        self._clock = 0  # LRU timestamp source
        self.stats = CounterSet("dram-cache-org")
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")

    # -- indexing -------------------------------------------------------------

    def set_index(self, page: int) -> int:
        mask = self._set_mask
        if mask is not None:
            return page & mask
        return page % self.num_sets

    def _ways(self, page: int) -> List[Way]:
        return self._sets[self.set_index(page)]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, page: int, is_write: bool = False) -> bool:
        """Probe the tags; on a hit, touch LRU (and dirty for writes)."""
        self._clock += 1
        mask = self._set_mask
        index = page & mask if mask is not None else page % self.num_sets
        way = self._tag_index[index].get(page)
        if way is not None:
            way.last_touch = self._clock
            way.access_count += 1
            if is_write:
                way.dirty = True
            self._hits.incr()
            return True
        self._misses.incr()
        return False

    def lookup_many(self, pages, writes, start: int = 0,
                    stop: Optional[int] = None) -> int:
        """Batched leading-hit probe for the vector backend.

        Processes ``pages[start:stop]`` in order, applying the exact
        :meth:`lookup` hit side effects (clock tick, LRU touch, access
        count, dirty-on-write, hit counter) to each page until the
        first one whose tag is absent, and returns the number of
        leading hits.  The missing access is *not* probed — no clock
        tick, no miss counter — so the caller can replay it through
        the ordinary access path with scalar-identical effects.

        Set indexes for the whole block are computed in one vectorized
        pass (the mask/modulo arithmetic is the per-probe cost the
        scalar path pays in Python); the tag-dict walk stays
        sequential because each hit's LRU timestamp depends on the
        probes before it.
        """
        if stop is None:
            stop = len(pages)
        if stop <= start:
            return 0
        mask = self._set_mask
        block = np.asarray(pages[start:stop], dtype=np.int64)
        if mask is not None:
            set_indexes = (block & mask).tolist()
        else:
            set_indexes = (block % self.num_sets).tolist()
        tag_index = self._tag_index
        clock = self._clock
        hits = 0
        for offset in range(stop - start):
            position = start + offset
            way = tag_index[set_indexes[offset]].get(pages[position])
            if way is None:
                break
            clock += 1
            way.last_touch = clock
            way.access_count += 1
            if writes[position]:
                way.dirty = True
            hits += 1
        self._clock = clock
        if hits:
            # Integral increments: one batched add matches the float
            # value of `hits` single .incr() calls (see warm_job).
            self._hits.add(hits)
        return hits

    def contains(self, page: int) -> bool:
        """Tag probe without LRU side effects."""
        return page in self._tag_index[self.set_index(page)]

    def is_reserved(self, page: int) -> bool:
        """True if a refill for ``page`` already holds a way."""
        return page in self._reserved_index[self.set_index(page)]

    # -- refill path ------------------------------------------------------------

    def reserve_victim(self, page: int) -> Optional[EvictedPage]:
        """Claim a way for an incoming refill of ``page``.

        Picks an invalid way if possible, otherwise evicts the LRU
        non-reserved way.  Returns the evicted page (None if a free way
        was available).  Raises :class:`ProtocolError` when every way in
        the set is already reserved — the backside controller must bound
        outstanding misses per set to avoid this.
        """
        set_index = self.set_index(page)
        reserved = self._reserved_index[set_index]
        if page in reserved:
            raise ProtocolError(f"page {page} already has a reserved way")
        ways = self._sets[set_index]
        # Prefer an invalid, unreserved way.
        for way in ways:
            if way.page is None and way.reserved_for is None:
                way.reserved_for = page
                reserved[page] = way
                return None
        # Evict the LRU valid, unreserved way.
        victim: Optional[Way] = None
        for way in ways:
            if way.page is not None and way.reserved_for is None:
                if victim is None or way.last_touch < victim.last_touch:
                    victim = way
        if victim is None:
            raise ProtocolError(
                f"all ways of set {set_index} are reserved; "
                "too many concurrent misses to one set"
            )
        evicted = EvictedPage(victim.page, victim.dirty,
                              victim.access_count)
        del self._tag_index[set_index][victim.page]
        victim.page = None
        victim.dirty = False
        victim.access_count = 0
        victim.reserved_for = page
        reserved[page] = victim
        self.stats.add("evictions")
        if evicted.dirty:
            self.stats.add("dirty_evictions")
        return evicted

    def install(self, page: int, dirty: bool = False) -> None:
        """Fill the reserved way with the arrived page."""
        self._clock += 1
        set_index = self.set_index(page)
        way = self._reserved_index[set_index].pop(page, None)
        if way is None:
            raise ProtocolError(f"install of page {page} without a reservation")
        way.page = page
        way.dirty = dirty
        way.last_touch = self._clock
        way.access_count = 1  # the access that missed replays
        way.reserved_for = None
        self._tag_index[set_index][page] = way
        self.stats.add("installs")

    def cancel_reservation(self, page: int) -> None:
        """Release a reservation without installing (error paths)."""
        set_index = self.set_index(page)
        way = self._reserved_index[set_index].pop(page, None)
        if way is None:
            raise ProtocolError(f"no reservation to cancel for page {page}")
        way.reserved_for = None

    # -- direct manipulation (warmup / tests) -----------------------------------

    def populate(self, page: int) -> Optional[EvictedPage]:
        """Insert a page immediately (used for cache warmup)."""
        # Single probe replacing the old contains() + lookup() pair;
        # the hit arm mirrors lookup()'s hit path exactly and the miss
        # arm has no probe side effects, matching the old behaviour.
        mask = self._set_mask
        index = page & mask if mask is not None else page % self.num_sets
        way = self._tag_index[index].get(page)
        if way is not None:
            self._clock += 1
            way.last_touch = self._clock
            way.access_count += 1
            self._hits.incr()
            return None
        evicted = self.reserve_victim(page)
        self.install(page)
        return evicted

    def warm_job(self, steps) -> int:
        """Warmup fast path: stream one job's steps through
        :meth:`populate` semantics (plus the write-touch
        ``lookup(page, is_write=True)`` per write step) without a
        method call per step.  Clock, LRU, dirty and counter effects
        are identical to the populate()/lookup() pair it replaces;
        returns the number of steps consumed.
        """
        num_sets = self.num_sets
        mask = self._set_mask
        tag_index = self._tag_index
        hits = 0
        done = 0
        for step in steps:
            page = step.page
            index = page & mask if mask is not None else page % num_sets
            way = tag_index[index].get(page)
            if way is None:
                self.reserve_victim(page)
                self.install(page)
                if step.is_write:
                    way = tag_index[index][page]
                    clock = self._clock + 1
                    self._clock = clock
                    way.last_touch = clock
                    way.access_count += 1
                    way.dirty = True
                    hits += 1
            else:
                clock = self._clock + 1
                self._clock = clock
                way.last_touch = clock
                way.access_count += 1
                hits += 1
                if step.is_write:
                    clock += 1
                    self._clock = clock
                    way.last_touch = clock
                    way.access_count += 1
                    way.dirty = True
                    hits += 1
            done += 1
        if hits:
            # One batched add: hit counts are integral, so summing the
            # increments first yields the same float value as adding
            # them one at a time.
            self._hits.add(hits)
        return done

    # -- warm-state snapshot (repro.snapshot) -----------------------------------

    def dump_state(self) -> Dict[str, object]:
        """Compact, picklable dump of the full tag state.

        Ways are flattened set-major into parallel int lists (TDRAM
        keeps tags alongside data in the row; this is the serialized
        analogue): page (-1 = invalid), dirty flag, LRU timestamp,
        access count, reserved_for (-1 = unreserved), plus the LRU
        clock and the stats counters.
        """
        pages: List[int] = []
        dirty: List[int] = []
        last_touch: List[int] = []
        access_count: List[int] = []
        reserved_for: List[int] = []
        for ways in self._sets:
            for way in ways:
                pages.append(-1 if way.page is None else way.page)
                dirty.append(1 if way.dirty else 0)
                last_touch.append(way.last_touch)
                access_count.append(way.access_count)
                reserved_for.append(-1 if way.reserved_for is None
                                    else way.reserved_for)
        return {
            "num_sets": self.num_sets,
            "associativity": self.associativity,
            "pages": pages,
            "dirty": dirty,
            "last_touch": last_touch,
            "access_count": access_count,
            "reserved_for": reserved_for,
            "clock": self._clock,
            "stats": self.stats.as_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`dump_state` dump bit-identically.

        Geometry must match the dump; the tag and reservation indexes
        are rebuilt from the restored ways so the coherence invariants
        hold by construction.
        """
        if (state["num_sets"] != self.num_sets
                or state["associativity"] != self.associativity):
            raise ConfigurationError(
                f"warm-state geometry mismatch: snapshot is "
                f"{state['num_sets']}x{state['associativity']}, cache is "
                f"{self.num_sets}x{self.associativity}"
            )
        pages = state["pages"]
        dirty = state["dirty"]
        last_touch = state["last_touch"]
        access_count = state["access_count"]
        reserved_for = state["reserved_for"]
        flat = 0
        for set_index, ways in enumerate(self._sets):
            tag_index = self._tag_index[set_index]
            reserved_index = self._reserved_index[set_index]
            tag_index.clear()
            reserved_index.clear()
            for way in ways:
                page = pages[flat]
                way.page = None if page == -1 else page
                way.dirty = bool(dirty[flat])
                way.last_touch = last_touch[flat]
                way.access_count = access_count[flat]
                reserved = reserved_for[flat]
                way.reserved_for = None if reserved == -1 else reserved
                if way.page is not None:
                    tag_index[way.page] = way
                if way.reserved_for is not None:
                    reserved_index[way.reserved_for] = way
                flat += 1
        self._clock = state["clock"]
        self.stats.restore(state["stats"])

    def occupancy(self) -> int:
        """Number of valid pages currently cached."""
        return sum(
            1 for ways in self._sets for way in ways if way.valid
        )

    def dirty_count(self) -> int:
        return sum(
            1 for ways in self._sets for way in ways if way.valid and way.dirty
        )

    def miss_ratio(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["misses"] / total
