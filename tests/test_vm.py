"""Unit tests for page tables, TLB, walker, and shootdowns."""

import itertools

import pytest

from repro.config import OsConfig
from repro.errors import ConfigurationError, WorkloadError
from repro.vm import PageTable, PageTableWalker, Tlb, TlbShootdownModel


def make_table(levels=4, bits=9):
    counter = itertools.count(10_000)
    return PageTable(lambda: next(counter), levels=levels, bits_per_level=bits)


class TestPageTable:
    def test_map_translate_roundtrip(self):
        table = make_table()
        table.map(vpn=0x12345, ppn=77)
        assert table.translate(0x12345) == 77
        assert table.translate(0x12346) is None

    def test_unmap(self):
        table = make_table()
        table.map(5, 99)
        assert table.unmap(5) == 99
        assert table.translate(5) is None
        with pytest.raises(WorkloadError):
            table.unmap(5)

    def test_walk_path_depth(self):
        table = make_table(levels=4)
        table.map(0xABCDE, 1)
        path = table.walk_path(0xABCDE)
        assert len(path) == 4  # root + 3 interior levels
        # Unmapped far-away vpn: only the root is visited.
        assert len(table.walk_path(0xFFFFFFFFF)) >= 1

    def test_nearby_vpns_share_nodes(self):
        table = make_table()
        table.map(0x1000, 1)
        table.map(0x1001, 2)
        assert table.walk_path(0x1000) == table.walk_path(0x1001)
        assert table.mapping_count == 2

    def test_node_count_grows_with_sparse_mappings(self):
        table = make_table(levels=3, bits=4)
        before = table.node_count()
        table.map(0x000, 1)
        table.map(0xF00, 2)  # different top-level subtree
        assert table.node_count() > before

    def test_leaf_collision_raises(self):
        # levels=2, bits=2: vpn 0b0101 -> path [1][1].
        table = make_table(levels=2, bits=2)
        table.map(0b0101, 3)
        # Mapping something that requires traversing through a leaf:
        # same top index but deeper tree is impossible with 2 levels,
        # so simulate by mapping vpn that lands on same leaf slot.
        table.map(0b0101, 4)  # overwrite is allowed (remap)
        assert table.translate(0b0101) == 4

    def test_invalid_geometry_raises(self):
        with pytest.raises(ConfigurationError):
            make_table(levels=0)
        with pytest.raises(ConfigurationError):
            make_table(bits=0)


class TestTlb:
    def test_hit_after_insert(self):
        tlb = Tlb(4)
        tlb.insert(1, 100)
        assert tlb.lookup(1) == 100
        assert tlb.lookup(2) is None
        assert tlb.hit_ratio() == pytest.approx(0.5)

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        tlb.lookup(1)        # 1 becomes MRU
        tlb.insert(3, 30)    # evicts 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == 10

    def test_invalidate(self):
        tlb = Tlb(4)
        tlb.insert(1, 10)
        assert tlb.invalidate(1)
        assert not tlb.invalidate(1)
        assert tlb.lookup(1) is None

    def test_flush(self):
        tlb = Tlb(4)
        tlb.insert(1, 10)
        tlb.insert(2, 20)
        assert tlb.flush() == 2
        assert len(tlb) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            Tlb(0)


class TestShootdown:
    def test_latency_grows_with_cores(self):
        config = OsConfig()
        small = TlbShootdownModel(config, num_cores=4).latency_ns()
        large = TlbShootdownModel(config, num_cores=64).latency_ns()
        assert large > small

    def test_64_core_shootdown_is_tens_of_microseconds(self):
        # Sec. II-C: "incurring over 10 us in latency" at high core counts.
        model = TlbShootdownModel(OsConfig(), num_cores=64)
        assert model.latency_ns() > 10_000.0

    def test_batching_amortizes(self):
        model = TlbShootdownModel(OsConfig(), num_cores=16)
        one_by_one = 4 * model.latency_ns(1)
        batched = model.latency_ns(4)
        assert batched < one_by_one

    def test_execute_invalidates_all_tlbs(self):
        model = TlbShootdownModel(OsConfig(), num_cores=2)
        tlbs = [Tlb(4), Tlb(4)]
        for tlb in tlbs:
            tlb.insert(7, 70)
        latency = model.execute(7, tlbs)
        assert latency > 0
        assert all(tlb.lookup(7) is None for tlb in tlbs)

    def test_throughput_ceiling(self):
        model = TlbShootdownModel(OsConfig(), num_cores=64)
        assert model.throughput_ceiling_per_second() == \
            pytest.approx(1e9 / model.latency_ns())

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            TlbShootdownModel(OsConfig(), num_cores=0)
        model = TlbShootdownModel(OsConfig(), num_cores=2)
        with pytest.raises(ConfigurationError):
            model.latency_ns(0)


class TestWalker:
    def test_walk_latency_serializes_steps(self):
        table = make_table()
        table.map(0x777, 1)
        walker = PageTableWalker(table)
        latency = walker.walk_latency_ns(0x777, lambda page: 100.0)
        assert latency == pytest.approx(400.0)  # 4 levels x 100 ns

    def test_walker_stats(self):
        table = make_table()
        table.map(0x1, 1)
        walker = PageTableWalker(table)
        walker.walk_pages(0x1)
        assert walker.stats["walks"] == 1
        assert walker.stats["steps"] == 4


class TestAddressSpace:
    def make(self, cores=2, tlb_entries=4):
        from repro.vm import AddressSpace
        return AddressSpace(cores, tlb_entries=tlb_entries)

    def test_map_translate_roundtrip(self):
        space = self.make()
        ppn = space.map(0x100)
        got, walk = space.translate(0, 0x100)
        assert got == ppn
        assert walk  # cold: the walker ran
        got_again, walk_again = space.translate(0, 0x100)
        assert got_again == ppn
        assert walk_again == []  # TLB hit

    def test_per_core_tlbs_are_independent(self):
        space = self.make(cores=2)
        space.map(7)
        space.translate(0, 7)
        # Core 1 still has to walk.
        _, walk = space.translate(1, 7)
        assert walk

    def test_unmap_shoots_down_every_core(self):
        space = self.make(cores=2)
        space.map(9)
        space.translate(0, 9)
        space.translate(1, 9)
        latency = space.unmap(9)
        assert latency > 0
        with pytest.raises(WorkloadError):
            space.translate(0, 9)
        assert space.stats["translation_faults"] == 1

    def test_double_map_rejected(self):
        space = self.make()
        space.map(1)
        with pytest.raises(WorkloadError):
            space.map(1)

    def test_explicit_ppn(self):
        space = self.make()
        space.map(3, ppn=777)
        assert space.translate(0, 3)[0] == 777

    def test_hit_ratio(self):
        space = self.make()
        space.map(1)
        space.translate(0, 1)   # fill
        space.translate(0, 1)   # hit
        space.translate(0, 1)   # hit
        assert space.tlb_hit_ratio() == pytest.approx(2 / 3)

    def test_tlb_capacity_evicts(self):
        space = self.make(cores=1, tlb_entries=2)
        for vpn in range(3):
            space.map(vpn)
            space.translate(0, vpn)
        # vpn 0 was evicted: walking again.
        _, walk = space.translate(0, 0)
        assert walk
