"""Tests for the footprint-cache extension."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramCacheConfig, FlashConfig
from repro.dramcache import DramCache
from repro.dramcache.footprint import BLOCKS_PER_PAGE, FootprintPredictor
from repro.errors import ConfigurationError
from repro.flash import FlashDevice
from repro.sim import Engine, spawn


class TestFootprintPredictor:
    def test_cold_region_fetches_full_page(self):
        predictor = FootprintPredictor()
        assert predictor.predict_blocks(0) == BLOCKS_PER_PAGE
        assert predictor.stats["cold_predictions"] == 1

    def test_learns_small_footprints(self):
        predictor = FootprintPredictor(region_pages=4, safety_blocks=2)
        for _ in range(10):
            predictor.record_eviction(0, accesses_while_resident=3,
                                      fetched_blocks=BLOCKS_PER_PAGE)
        predicted = predictor.predict_blocks(1)  # same region
        assert predicted == 3 + 2

    def test_regions_are_independent(self):
        predictor = FootprintPredictor(region_pages=4)
        predictor.record_eviction(0, 2, BLOCKS_PER_PAGE)
        assert predictor.predict_blocks(5) == BLOCKS_PER_PAGE  # region 1 cold

    def test_underfetch_detection(self):
        predictor = FootprintPredictor()
        predictor.record_eviction(0, accesses_while_resident=10,
                                  fetched_blocks=4)
        assert predictor.stats["underfetches"] == 1
        assert predictor.underfetch_rate() == 1.0

    def test_footprint_capped_at_page(self):
        predictor = FootprintPredictor(region_pages=1, safety_blocks=0)
        predictor.record_eviction(0, accesses_while_resident=10_000,
                                  fetched_blocks=BLOCKS_PER_PAGE)
        assert predictor.predict_blocks(0) == BLOCKS_PER_PAGE

    def test_prediction_at_least_one_block(self):
        predictor = FootprintPredictor(region_pages=1, safety_blocks=0)
        for _ in range(20):
            predictor.record_eviction(0, 0, 8)
        assert predictor.predict_blocks(0) >= 1

    def test_predict_bytes(self):
        predictor = FootprintPredictor(region_pages=1, safety_blocks=0)
        for _ in range(20):
            predictor.record_eviction(0, 4, 8)
        assert predictor.predict_bytes(0) == predictor.predict_blocks(0) * 64

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            FootprintPredictor(region_pages=0)
        with pytest.raises(ConfigurationError):
            FootprintPredictor(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            FootprintPredictor(safety_blocks=1000)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_predictions_always_in_range(self, footprints):
        predictor = FootprintPredictor(region_pages=2, safety_blocks=3)
        for used in footprints:
            predictor.record_eviction(0, used, predictor.predict_blocks(0))
            predicted = predictor.predict_blocks(0)
            assert 1 <= predicted <= BLOCKS_PER_PAGE


class TestFootprintIntegration:
    def make_cache(self, footprint: bool):
        engine = Engine()
        flash = FlashDevice(
            engine,
            FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                        pages_per_block=16, overprovisioning=0.5),
            1024,
        )
        config = DramCacheConfig(
            associativity=4,
            footprint_enabled=footprint,
            footprint_region_pages=8,
            footprint_safety_blocks=2,
        )
        cache = DramCache(engine, config, cache_pages=16, flash=flash)
        return engine, cache, flash

    def _churn(self, engine, cache, pages):
        def driver():
            for page in pages:
                result = cache.access(page)
                if not result.hit:
                    yield result.completion

        spawn(engine, driver())
        engine.run()

    def test_footprint_reduces_flash_bytes(self):
        # Sparse pattern: each page touched once per residency.
        pattern = [page for _ in range(6) for page in range(64)]
        engine_a, cache_a, flash_a = self.make_cache(footprint=False)
        self._churn(engine_a, cache_a, pattern)
        engine_b, cache_b, flash_b = self.make_cache(footprint=True)
        self._churn(engine_b, cache_b, pattern)
        assert flash_b.pcie.stats["bytes"] < flash_a.pcie.stats["bytes"]
        assert cache_b.backside.footprint.stats["trainings"] > 0

    def test_footprint_disabled_by_default(self):
        engine, cache, flash = self.make_cache(footprint=False)
        assert cache.backside.footprint is None

    def test_partial_read_size_validated(self):
        engine, cache, flash = self.make_cache(footprint=False)
        with pytest.raises(ConfigurationError):
            flash.read(0, num_bytes=0)
        with pytest.raises(ConfigurationError):
            flash.read(0, num_bytes=10_000)
