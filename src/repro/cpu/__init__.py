"""Core-side microarchitecture: ROB/SB, ASO speculation, MSHRs, costs."""

from repro.cpu.core import CoreModel, MissHandlingRegisters
from repro.cpu.pipeline import (
    Instruction,
    PipelinedMachine,
    ReferenceMachine,
    random_program,
)
from repro.cpu.mshr import MshrAllocation, MshrFile
from repro.cpu.registers import MapTable, PhysicalRegisterFile
from repro.cpu.rob import (
    InstructionKind,
    ReorderBuffer,
    RobEntry,
    StoreBuffer,
    StoreBufferEntry,
)
from repro.cpu.speculation import SpeculativeCore

__all__ = [
    "CoreModel",
    "Instruction",
    "PipelinedMachine",
    "ReferenceMachine",
    "random_program",
    "InstructionKind",
    "MapTable",
    "MissHandlingRegisters",
    "MshrAllocation",
    "MshrFile",
    "PhysicalRegisterFile",
    "ReorderBuffer",
    "RobEntry",
    "SpeculativeCore",
    "StoreBuffer",
    "StoreBufferEntry",
]
