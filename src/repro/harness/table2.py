"""Table II: 99th-percentile service latency normalized to Flash-Sync.

The paper compares the service-latency distribution (dispatch to
completion, miss waits included) of AstriFlash against the ablations:

* AstriFlash       ~1.02x Flash-Sync — the priority scheduler resumes a
  pending job right after its page arrives (modulo the current job);
* AstriFlash-noPS  ~7x — FIFO starves pending jobs behind new work;
* AstriFlash-noDP  ~1.7x — cold page-table walks are served from flash.

Runs use open-loop arrivals at a moderate load so the comparison
captures scheduling policy rather than saturation queueing.  The four
ablation runs fan out through :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.common import ExperimentResult, resolve_scale
from repro.harness.parallel import RunSpec, poisson, run_spec, run_specs

CONFIGS: Sequence[str] = (
    "flash-sync", "astriflash", "astriflash-nops", "astriflash-nodp",
)


def run(scale="quick", seed: int = 42, workload_name: str = "tatp",
        load: float = 0.4, jobs: Optional[int] = None,
        snapshots: Optional[bool] = None,
        snapshot_dir=None) -> ExperimentResult:
    """Regenerate Table II's normalized p99 service latencies."""
    scale = resolve_scale(scale)
    saturation = run_spec(
        RunSpec("dram-only", workload_name, scale, seed=seed), jobs=jobs,
        snapshots=snapshots, snapshot_dir=snapshot_dir,
    )
    per_core_interarrival = (
        scale.num_cores / (load * saturation.throughput_jobs_per_s) * 1e9
    )

    specs = [
        RunSpec(config_name, workload_name, scale, seed=seed,
                arrivals=poisson(per_core_interarrival, seed=seed + 1))
        for config_name in CONFIGS
    ]
    outcomes = dict(zip(CONFIGS, run_specs(specs, jobs=jobs,
                                           snapshots=snapshots,
                                           snapshot_dir=snapshot_dir)))
    baseline = outcomes["flash-sync"].service_p99_ns

    result = ExperimentResult(
        experiment="table2",
        title=("Table II: p99 service latency normalized to Flash-Sync "
               f"({workload_name}, {load:.0%} load)"),
        columns=["configuration", "p99_service_norm"],
        notes="Paper: AstriFlash ~1.02x, noPS ~7x, noDP ~1.7x.",
    )
    for config_name in CONFIGS:
        result.add_row(
            config_name,
            outcomes[config_name].service_p99_ns / baseline,
        )
    return result
