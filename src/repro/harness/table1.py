"""Table I: system parameters for simulation.

This is the configuration itself — regenerating it verifies the preset
matches the paper's machine (16x ARM Cortex-A76-like cores, 1 MiB of
LLC per core, 256 GiB dataset on flash, 8 GiB (3%) DRAM cache, 4 KiB
pages, 50 us flash reads, FC 1 cycle / BC 3 cycles per command,
32-64 user threads per core at 100 ns per switch).
"""

from __future__ import annotations

from repro.config import make_config
from repro.harness.common import ExperimentResult
from repro.units import GIB, MIB, US


def run(scale="quick", jobs=None) -> ExperimentResult:
    del scale, jobs  # static configuration
    config = make_config("astriflash")
    result = ExperimentResult(
        experiment="table1",
        title="Table I: system parameters (AstriFlash preset)",
        columns=["parameter", "value"],
    )
    core = config.core
    result.add_row("cores", f"{config.num_cores}x ARM Cortex-A76-like")
    result.add_row("core frequency", f"{core.frequency_ghz:g} GHz")
    result.add_row("issue width", f"{core.issue_width}-wide OoO")
    result.add_row("ROB / SB", f"{core.rob_entries} / "
                               f"{core.store_buffer_entries} entries")
    result.add_row("base PRF", f"{core.base_physical_registers} registers "
                               f"(+{core.store_buffer_entries * core.registers_per_speculative_store} for ASO)")
    result.add_row("LLC", f"{config.llc_capacity_per_core // MIB} MiB per core")
    result.add_row("dataset on flash",
                   f"{config.flash.capacity_bytes // GIB} GiB")
    result.add_row("DRAM cache",
                   f"{config.dram_cache.capacity_bytes // GIB} GiB "
                   f"({config.dram_cache.capacity_bytes / config.flash.capacity_bytes:.1%}) "
                   f"{config.dram_cache.associativity}-way, 4 KiB pages")
    result.add_row("flash read latency",
                   f"{config.flash.read_latency_ns / US:g} us")
    result.add_row("frontside controller",
                   f"FSM, {config.dram_cache.frontside_cycles_per_command} "
                   "cycle/command, FR-FCFS")
    result.add_row("backside controller",
                   f"programmable, {config.dram_cache.backside_cycles_per_command} "
                   "cycles/command")
    result.add_row("miss status row",
                   f"{config.dram_cache.msr_entries} entries in DRAM")
    result.add_row("user threads",
                   f"{config.ult.threads_per_core} per core, "
                   f"{config.ult.switch_latency_ns:g} ns switch")
    result.add_row("scheduling", config.ult.policy.value)
    return result
