"""Unit tests for generator-based processes and signals."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Signal, spawn


def test_process_sleeps_by_yielding_floats():
    engine = Engine()
    trace = []

    def worker():
        trace.append(("start", engine.now))
        yield 10.0
        trace.append(("mid", engine.now))
        yield 5.0
        trace.append(("end", engine.now))

    spawn(engine, worker())
    engine.run()
    assert trace == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]


def test_signal_wakes_waiting_process_with_value():
    engine = Engine()
    signal = Signal(engine, "data")
    received = []

    def consumer():
        value = yield signal
        received.append((value, engine.now))

    def producer():
        yield 20.0
        signal.fire("payload")

    spawn(engine, consumer())
    spawn(engine, producer())
    engine.run()
    assert received == [("payload", 20.0)]


def test_signal_fired_before_wait_returns_immediately():
    engine = Engine()
    signal = Signal(engine, "early")
    signal.fire(99)
    received = []

    def consumer():
        value = yield signal
        received.append(value)

    spawn(engine, consumer())
    engine.run()
    assert received == [99]


def test_signal_double_fire_raises():
    engine = Engine()
    signal = Signal(engine)
    signal.fire()
    with pytest.raises(SimulationError):
        signal.fire()


def test_joining_a_process_returns_its_result():
    engine = Engine()
    results = []

    def child():
        yield 30.0
        return "child-result"

    def parent():
        proc = spawn(engine, child())
        value = yield proc
        results.append((value, engine.now))

    spawn(engine, parent())
    engine.run()
    assert results == [("child-result", 30.0)]


def test_joining_finished_process_returns_immediately():
    engine = Engine()
    results = []

    def child():
        return "done"
        yield  # pragma: no cover

    def parent():
        proc = spawn(engine, child())
        yield 50.0  # child finishes long before
        value = yield proc
        results.append(value)

    spawn(engine, parent())
    engine.run()
    assert results == ["done"]


def test_multiple_waiters_all_wake():
    engine = Engine()
    signal = Signal(engine)
    woken = []

    def waiter(tag):
        yield signal
        woken.append(tag)

    for tag in range(3):
        spawn(engine, waiter(tag))

    def firer():
        yield 1.0
        signal.fire()

    spawn(engine, firer())
    engine.run()
    assert sorted(woken) == [0, 1, 2]


def test_yielding_garbage_raises():
    engine = Engine()

    def bad():
        yield "not-a-yieldable"

    spawn(engine, bad())
    with pytest.raises(SimulationError):
        engine.run()
