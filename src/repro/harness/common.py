"""Shared experiment-harness infrastructure.

Every figure/table module exposes ``run(scale=...)`` returning an
:class:`ExperimentResult` whose rows regenerate the paper's series, and
the harness registry lets the CLI/benchmarks enumerate them.

Two scales:

* ``quick`` — small dataset/short windows; minutes for everything.
  Used by the pytest-benchmark targets and CI.
* ``full``  — the scaled-up configuration DESIGN.md documents; use for
  the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, make_config
from repro.core import Runner
from repro.units import US
from repro.workloads import make_workload


@dataclass(frozen=True)
class HarnessScale:
    """Knobs shared by the simulation-backed experiments."""

    name: str
    dataset_pages: int
    num_cores: int
    warmup_us: float
    measurement_us: float
    zipf_s: float
    workloads: Sequence[str]

    def workload_kwargs(self) -> Dict[str, float]:
        return {"zipf_s": self.zipf_s}


QUICK = HarnessScale(
    name="quick",
    dataset_pages=8192,
    num_cores=2,
    warmup_us=300.0,
    measurement_us=2_000.0,
    zipf_s=1.7,
    workloads=("arrayswap", "tatp", "tpcc"),
)

FULL = HarnessScale(
    name="full",
    dataset_pages=1 << 15,
    num_cores=8,
    warmup_us=1_000.0,
    measurement_us=6_000.0,
    zipf_s=1.62,
    workloads=("arrayswap", "rbtree", "hashtable", "tatp", "tpcc",
               "silo", "masstree"),
)

SCALES = {"quick": QUICK, "full": FULL}


def resolve_scale(scale) -> HarnessScale:
    if isinstance(scale, HarnessScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {scale!r}; known: {known}") from None


@dataclass
class ExperimentResult:
    """Rows of one regenerated figure/table."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def format_table(self) -> str:
        """The figure/table as aligned text, ready to print."""
        header = [self.title, ""]
        rendered = [
            [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
            for row in self.rows
        ]
        widths = [
            max(len(self.columns[i]),
                max((len(r[i]) for r in rendered), default=0))
            for i in range(len(self.columns))
        ]
        header.append("  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ))
        header.append("  ".join("-" * w for w in widths))
        for row in rendered:
            header.append("  ".join(
                row[i].ljust(widths[i]) for i in range(len(self.columns))
            ))
        if self.notes:
            header.extend(["", self.notes])
        return "\n".join(header)


def build_config(config_name: str, scale: HarnessScale) -> SystemConfig:
    config = make_config(config_name)
    config.num_cores = scale.num_cores
    config.scale.dataset_pages = scale.dataset_pages
    config.scale.warmup_ns = scale.warmup_us * US
    config.scale.measurement_ns = scale.measurement_us * US
    return config


def run_simulation(config_name: str, workload_name: str,
                   scale: HarnessScale, arrivals=None, seed: int = 42,
                   backend=None, **workload_overrides):
    """One full-system run at harness scale.

    ``backend`` picks the execution backend (scalar/vector); ``None``
    defers to ``$REPRO_BACKEND`` so profiling/bench drivers can steer
    whole experiments without threading an argument through each one.
    """
    config = build_config(config_name, scale)
    kwargs = scale.workload_kwargs()
    kwargs.update(workload_overrides)
    workload = make_workload(workload_name, scale.dataset_pages, seed=seed,
                             **kwargs)
    return Runner(config, workload, arrivals=arrivals,
                  backend=backend).run()
