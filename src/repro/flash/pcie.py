"""PCIe link model.

AstriFlash memory-maps flash behind PCIe BARs (Sec. IV-A) and sizes the
system so PCIe Gen5 bandwidth (~128 GB/s) covers the aggregate flash
refill traffic (Sec. II-A, Fig. 1).  The link is modelled as a
serializing pipe: a fixed propagation latency plus ``bytes/bandwidth``
of occupancy.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim import Engine, Server
from repro.stats import CounterSet


class PCIeLink:
    """A serializing link with fixed latency and finite bandwidth."""

    def __init__(self, engine: Engine, bandwidth_gbps: float,
                 latency_ns: float, name: str = "pcie") -> None:
        if bandwidth_gbps <= 0:
            raise ConfigurationError("PCIe bandwidth must be positive")
        if latency_ns < 0:
            raise ConfigurationError("PCIe latency cannot be negative")
        self.engine = engine
        self.bandwidth_bytes_per_ns = bandwidth_gbps  # GB/s == bytes/ns
        self.latency_ns = latency_ns
        self.name = name
        self._pipe = Server(engine, capacity=1, name=f"{name}:pipe")
        self.stats = CounterSet(name)

    def occupancy_ns(self, num_bytes: int) -> float:
        """Serialization time for ``num_bytes`` on the link."""
        return num_bytes / self.bandwidth_bytes_per_ns

    def transfer(self, num_bytes: int):
        """Process generator: move ``num_bytes`` across the link.

        Usage: ``yield from link.transfer(PAGE_SIZE)``.
        """
        grant = self._pipe.acquire()
        if grant is not None:
            yield grant
        yield self.occupancy_ns(num_bytes)
        self._pipe.release()
        # Propagation happens after serialization, off the pipe.
        yield self.latency_ns
        self.stats.add("transfers")
        self.stats.add("bytes", num_bytes)

    def utilization(self) -> float:
        return self._pipe.utilization()

    def __repr__(self) -> str:
        return f"<PCIeLink {self.bandwidth_bytes_per_ns:.0f} GB/s lat={self.latency_ns} ns>"
