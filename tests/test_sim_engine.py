"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(10.0, fired.append, "late")
    engine.schedule(5.0, fired.append, "early")
    engine.schedule(7.5, fired.append, "middle")
    engine.run()
    assert fired == ["early", "middle", "late"]


def test_ties_break_by_insertion_order():
    engine = Engine()
    fired = []
    for label in ("a", "b", "c"):
        engine.schedule(1.0, fired.append, label)
    engine.run()
    assert fired == ["a", "b", "c"]


def test_now_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(42.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [42.0]
    assert engine.now == 42.0


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(10.0, fired.append, "in-window")
    engine.schedule(100.0, fired.append, "after-window")
    engine.run(until=50.0)
    assert fired == ["in-window"]
    assert engine.now == 50.0
    engine.run()
    assert fired == ["in-window", "after-window"]


def test_run_until_advances_clock_even_without_events():
    engine = Engine()
    engine.run(until=123.0)
    assert engine.now == 123.0


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(10.0, fired.append, "cancel-me")
    engine.schedule(5.0, fired.append, "keep-me")
    engine.cancel(event)
    engine.run()
    assert fired == ["keep-me"]


def test_double_cancel_raises():
    engine = Engine()
    event = engine.schedule(10.0, lambda: None)
    engine.cancel(event)
    with pytest.raises(SimulationError):
        engine.cancel(event)


def test_cancel_after_fire_raises():
    engine = Engine()
    event = engine.schedule(10.0, lambda: None)
    engine.run()
    assert event.fired
    with pytest.raises(SimulationError):
        engine.cancel(event)


def test_cancel_after_fire_does_not_corrupt_pending_count():
    # The old accounting decremented _live_events for an event that had
    # already been popped and executed, driving pending_events negative.
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    engine.run()
    assert engine.pending_events == 0
    with pytest.raises(SimulationError):
        engine.cancel(event)
    assert engine.pending_events == 0
    engine.schedule(1.0, lambda: None)
    assert engine.pending_events == 1


def test_cancel_after_step_raises():
    engine = Engine()
    fired = []
    event = engine.schedule(1.0, fired.append, 1)
    assert engine.step()
    with pytest.raises(SimulationError):
        engine.cancel(event)


def test_scheduling_into_the_past_raises():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.schedule(1.0, chain, depth + 1)

    engine.schedule(0.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_pending_events_counts_live_events():
    engine = Engine()
    event = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending_events == 2
    engine.cancel(event)
    assert engine.pending_events == 1
    engine.run()
    assert engine.pending_events == 0


def test_step_executes_one_event():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, 1)
    engine.schedule(2.0, fired.append, 2)
    assert engine.step()
    assert fired == [1]
    assert engine.step()
    assert not engine.step()


def test_cancel_heavy_queue_is_compacted_and_bounded():
    engine = Engine()
    fired = []
    for index in range(10):
        engine.schedule(10_000.0 + index, fired.append, index)
    for _ in range(50):
        events = [engine.schedule(5_000.0, fired.append, -1)
                  for _ in range(100)]
        for event in events:
            engine.cancel(event)
        # Dead entries must never accumulate across rounds: compaction
        # keeps the heap within a small multiple of the live count.
        assert engine.queue_length <= 300
    assert engine.compactions > 0
    assert engine.pending_events == 10
    engine.run()
    assert fired == list(range(10))


def test_compaction_preserves_pop_order():
    engine = Engine()
    fired = []
    keepers = []
    for index in range(200):
        event = engine.schedule(float(index), fired.append, index)
        if index % 3 == 0:
            keepers.append(index)
        else:
            engine.cancel(event)
    assert engine.compactions >= 1
    engine.run()
    assert fired == keepers


def test_compaction_skips_tiny_queues():
    engine = Engine()
    events = [engine.schedule(100.0, lambda: None) for _ in range(10)]
    for event in events:
        engine.cancel(event)
    # Below the compaction floor the dead entries just wait to be
    # popped; nothing should have been rebuilt.
    assert engine.compactions == 0
    engine.run()
    assert engine.queue_length == 0
