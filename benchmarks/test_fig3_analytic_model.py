"""Benchmark: regenerate Fig. 3 (analytic p99 latency vs load)."""

import math

from conftest import run_once

from repro.harness import run_experiment
from repro.harness.fig3 import max_load_within_slo


def test_fig3_analytic_model(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "fig3",
                      scale=harness_scale)
    print("\n" + result.format_table())

    loads = result.column("load")
    sync = dict(zip(loads, result.column("flash-sync")))
    swap = dict(zip(loads, result.column("os-swap")))
    dram = dict(zip(loads, result.column("dram-only")))
    astri = dict(zip(loads, result.column("astriflash")))

    # Flash-Sync loses >80% of throughput: unstable beyond ~0.17 load.
    assert math.isinf(sync[0.2])
    # OS-Swap loses ~50%.
    assert math.isfinite(swap[0.4]) and math.isinf(swap[0.6])
    # AstriFlash tracks DRAM-only to high load.
    assert math.isfinite(astri[0.95])
    assert astri[0.9] / dram[0.9] < 1.3

    # Sec. III-A: an SLO of 40x the average service time puts
    # AstriFlash within ~20% of the DRAM-only system.
    sustained = max_load_within_slo(40.0)
    assert sustained["astriflash"] >= sustained["dram-only"] - 0.25
