"""Schema-stamped knee-curve artifacts (``BENCH_loadgen.json``).

Every field is deterministic (simulation-derived, no wall-clock
values), so two invocations of the same sweep produce bit-identical
JSON — the CI acceptance bar.  Serialization goes through
:mod:`repro.jsonutil` so non-finite floats become ``null`` instead of
leaking non-standard ``Infinity`` tokens.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.jsonutil import dumps

#: Bump when the JSON layout of :class:`LoadgenBench` changes so CI
#: consumers of ``BENCH_loadgen.json`` can detect incompatible files.
#: v2: added the ``execution`` backend-accounting block (backend name,
#: vector/scalar cell counts, per-kind and per-fallback-reason
#: histograms).
LOADGEN_SCHEMA_VERSION = 2

#: Default censoring threshold: a cell whose unfinished-job backlog
#: exceeds this fraction of offered requests cannot certify a p99 from
#: completed samples alone (the censored requests *are* the tail), so
#: its headline p99 is withheld and the lower bound reported instead.
DEFAULT_BACKLOG_THRESHOLD = 0.05


@dataclass
class LoadgenCell:
    """One (preset, offered QPS) point of the knee curve."""

    preset: str
    offered_qps: float
    achieved_qps: float
    completed_jobs: int
    unfinished_jobs: int
    backlog_fraction: float
    #: True when the backlog fraction exceeded the sweep's threshold:
    #: the measurement window censored the tail and ``p99_us`` is
    #: withheld (see ``p99_lower_bound_us``).
    censored: bool
    #: Headline p99 response latency; ``None`` for censored cells.
    p99_us: Optional[float]
    #: The raw completed-sample window p99 — optimistic when censored.
    observed_p99_us: Optional[float]
    #: Censoring-corrected lower bound (completed samples merged with
    #: unfinished-job ages).
    p99_lower_bound_us: Optional[float]
    service_p99_us: float
    response_mean_us: Optional[float]
    #: SLO verdict (None when the cell was run without an SLO).
    #: Censored cells conservatively report False: their tail cannot
    #: be certified from this window.
    meets_slo: Optional[bool]


@dataclass
class KneeEvalPoint:
    """One load probed while refining a preset's knee."""

    qps: float
    p99_us: Optional[float]
    meets_slo: bool


@dataclass
class PresetKnee:
    """Sustained-QPS-under-SLO for one config preset."""

    preset: str
    #: Max offered QPS whose p99 met the SLO (None: even the lowest
    #: swept load violated it).
    sustained_qps: Optional[float]
    #: Same, normalized to the DRAM-only saturation throughput — the
    #: paper's Fig. 10 x-axis ("AstriFlash at ~93% load matches the
    #: DRAM-only p99 at ~96%").
    sustained_fraction_of_dram: Optional[float]
    status: str
    evaluations: List[KneeEvalPoint] = field(default_factory=list)


@dataclass
class LoadgenBench:
    """Everything one loadgen sweep produced, schema-stamped for CI."""

    experiment: str
    scale: str
    workload: str
    arrival: str
    seed: int
    slo_us: float
    backlog_threshold: float
    saturation_qps: float
    qps_points: List[float]
    presets: List[str]
    rber: float
    fault_seed: int
    cells: List[LoadgenCell]
    knees: List[PresetKnee]
    #: True iff every preset's observed p99 series is non-decreasing
    #: across the swept loads (censored cells excluded) — the CI
    #: acceptance property.
    monotonic_p99: bool = True
    schema_version: int = LOADGEN_SCHEMA_VERSION
    config_preset: str = ""  # HarnessScale.name the run resolved to
    #: Backend accounting (schema v2): which execution backend the
    #: sweep requested and, per run shape, how many cells the vector
    #: backend accepted (``vector_kinds``) versus fell back on
    #: (``fallback_reasons``).  Derived from config facts only, so it
    #: is deterministic — but it names the backend, so CI byte-diffs
    #: across backends must exclude this key.
    execution: dict = field(default_factory=dict)

    def curve(self, preset: str) -> List[LoadgenCell]:
        """The preset's cells in sweep order."""
        return [cell for cell in self.cells if cell.preset == preset]

    def knee(self, preset: str) -> Optional[PresetKnee]:
        for knee in self.knees:
            if knee.preset == preset:
                return knee
        return None

    def format_text(self) -> str:
        lines = [
            f"loadgen sweep: {self.experiment} (scale={self.scale}, "
            f"workload={self.workload}, arrival={self.arrival})",
            f"  SLO: p99 <= {self.slo_us:,.1f} us | DRAM-only "
            f"saturation: {self.saturation_qps:,.0f} jobs/s | "
            f"censor threshold: backlog > {self.backlog_threshold:.0%}",
            f"  p99 monotone across sweep: "
            f"{'yes' if self.monotonic_p99 else 'NO'}",
        ]
        if self.rber > 0.0:
            lines.append(f"  injected faults: rber={self.rber:g} "
                         f"(fault_seed={self.fault_seed})")
        for preset in self.presets:
            lines.append(f"  {preset}:")
            lines.append(
                f"    {'offered qps':>12}  {'achieved':>10}  "
                f"{'p99 us':>10}  {'backlog':>8}  {'slo':>4}"
            )
            for cell in self.curve(preset):
                if cell.censored:
                    bound = (f">= {cell.p99_lower_bound_us:,.1f}"
                             if cell.p99_lower_bound_us is not None
                             else "censored")
                    p99_text = bound
                else:
                    p99_text = (f"{cell.p99_us:,.1f}"
                                if cell.p99_us is not None else "-")
                slo_text = ("-" if cell.meets_slo is None
                            else "ok" if cell.meets_slo else "MISS")
                lines.append(
                    f"    {cell.offered_qps:>12,.0f}  "
                    f"{cell.achieved_qps:>10,.0f}  "
                    f"{p99_text:>10}  "
                    f"{cell.backlog_fraction:>8.1%}  {slo_text:>4}"
                )
            knee = self.knee(preset)
            if knee is not None:
                if knee.sustained_qps is None:
                    lines.append(
                        f"    knee: below the swept range "
                        f"({knee.status})"
                    )
                else:
                    fraction = knee.sustained_fraction_of_dram
                    norm = (f" ({fraction:.1%} of DRAM-only saturation)"
                            if fraction is not None else "")
                    lines.append(
                        f"    knee: sustains {knee.sustained_qps:,.0f} "
                        f"qps under SLO{norm} [{knee.status}]"
                    )
        return "\n".join(lines)

    def to_json(self) -> str:
        return dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def key_metrics(self) -> dict:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics

    def fingerprint(self) -> str:
        """Deterministic digest over the cells (ledger identity)."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).fingerprint
