"""Memory-cost model behind the paper's 20x claim.

Flash enjoys roughly a 50x $/GB advantage over DRAM (Sec. I); hosting a
1 TB dataset on flash with a 3 % DRAM cache therefore costs about 20x
less than hosting it entirely in DRAM:

    cost(DRAM-only) = D * p
    cost(AstriFlash) = 0.03 * D * p + D * p/50  ~= D * p / 20
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# Paper assumptions.
FLASH_PRICE_ADVANTAGE = 50.0        # DRAM $/GB divided by flash $/GB
DEFAULT_DRAM_FRACTION = 0.03
DEFAULT_DRAM_PRICE_PER_GB = 4.0     # USD, order-of-magnitude server DRAM


def dram_only_cost(dataset_gb: float,
                   dram_price_per_gb: float = DEFAULT_DRAM_PRICE_PER_GB
                   ) -> float:
    """Memory cost of hosting the whole dataset in DRAM."""
    if dataset_gb <= 0:
        raise ConfigurationError("dataset size must be positive")
    return dataset_gb * dram_price_per_gb


def astriflash_cost(dataset_gb: float,
                    dram_fraction: float = DEFAULT_DRAM_FRACTION,
                    dram_price_per_gb: float = DEFAULT_DRAM_PRICE_PER_GB,
                    flash_price_advantage: float = FLASH_PRICE_ADVANTAGE
                    ) -> float:
    """Memory cost of a DRAM-cache + flash hierarchy for the dataset."""
    if not 0.0 < dram_fraction <= 1.0:
        raise ConfigurationError("dram fraction out of (0,1]")
    if flash_price_advantage <= 0:
        raise ConfigurationError("price advantage must be positive")
    dram_cost = dataset_gb * dram_fraction * dram_price_per_gb
    flash_cost = dataset_gb * dram_price_per_gb / flash_price_advantage
    return dram_cost + flash_cost


def cost_reduction_factor(dataset_gb: float = 1024.0,
                          dram_fraction: float = DEFAULT_DRAM_FRACTION,
                          flash_price_advantage: float = FLASH_PRICE_ADVANTAGE
                          ) -> float:
    """How many times cheaper AstriFlash's memory is (the 20x claim)."""
    return dram_only_cost(dataset_gb) / astriflash_cost(
        dataset_gb, dram_fraction=dram_fraction,
        flash_price_advantage=flash_price_advantage,
    )
