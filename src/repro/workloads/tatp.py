"""TATP telecom workload (Sec. V-A).

The Telecom Application Transaction Processing benchmark: short
transactions against a subscriber database.  The paper highlights
'update subscriber data'; we implement the standard mix (read-heavy,
~20 % writes) over four table regions:

* subscribers   — hash index + row pages;
* access info   — fixed-size array keyed by subscriber;
* special facility / call forwarding — fixed-size arrays.

Average transactions take ~10 us (Sec. VI-C uses TATP for the
tail-latency study for exactly that reason).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.hashtable import HashIndex
from repro.workloads.zipf import ZipfianGenerator

ROWS_PER_PAGE = 16  # 256-byte subscriber rows


class TatpWorkload(Workload):
    """The TATP transaction mix with Zipfian subscriber popularity."""

    name = "tatp"
    rob_occupancy = 56.0

    # (transaction, weight) — the standard TATP mix.
    MIX = (
        ("get_subscriber_data", 0.35),
        ("get_access_data", 0.35),
        ("get_new_destination", 0.10),
        ("update_location", 0.14),
        ("update_subscriber_data", 0.02),
        ("insert_call_forwarding", 0.04),
    )

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_subscribers: Optional[int] = None, zipf_s: float = 1.55,
                 transactions_per_job: int = 8,
                 compute_ns: float = 150.0) -> None:
        super().__init__(dataset_pages, seed)
        if num_subscribers is None:
            num_subscribers = min(1 << 16, max(1024, dataset_pages * 4))
        self.num_subscribers = num_subscribers
        self.transactions_per_job = transactions_per_job
        self.compute_ns = compute_ns

        # Region layout over the page budget.
        index_budget = max(8, int(dataset_pages * 0.40))
        region_budget = max(4, (dataset_pages - index_budget) // 3)
        self._access_base = index_budget
        self._facility_base = index_budget + region_budget
        self._forwarding_base = index_budget + 2 * region_budget
        self._region_budget = region_budget

        self.index = HashIndex(
            max(512, num_subscribers // 2), base_page=0,
            page_budget=index_budget, expected_entries=num_subscribers,
        )
        self.index.bulk_load(range(num_subscribers))
        self._zipf = ZipfianGenerator(num_subscribers, zipf_s,
                                         seed=seed + 1, permute=False)

        weights = [weight for _, weight in self.MIX]
        if abs(sum(weights) - 1.0) > 1e-9:
            raise WorkloadError("TATP mix weights must sum to 1")
        # Precomputed CDF over the mix: the same left-to-right partial
        # sums _pick_transaction used to accumulate per call.
        cumulative = 0.0
        thresholds = []
        for kind, weight in self.MIX:
            cumulative += weight
            thresholds.append((cumulative, kind))
        self._mix_thresholds = tuple(thresholds)

    # -- table addressing -----------------------------------------------------

    def _array_page(self, base: int, subscriber: int) -> int:
        slot = (subscriber * self._region_budget * ROWS_PER_PAGE
                // self.num_subscribers) // ROWS_PER_PAGE
        return base + min(slot, self._region_budget - 1)

    # -- transactions -------------------------------------------------------------

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        # Transaction bodies are inlined rather than delegated through a
        # per-transaction sub-generator: every step of a TATP job would
        # otherwise resume two generator frames, and this is the hottest
        # step producer in the suite.  _compute is also inlined (same
        # draw, same bits — see Workload._compute).  Draw order (zipf
        # sample, mix roll, per-step compute jitter) is unchanged.
        step_cls = Step
        compute_ns = self.compute_ns
        sample = self._zipf.sample
        rng_random = self._rng_random
        thresholds = self._mix_thresholds
        lookup = self.index.lookup
        for _ in range(self.transactions_per_job):
            subscriber = sample()
            roll = rng_random()
            kind = thresholds[-1][1]
            for threshold, candidate in thresholds:
                if roll < threshold:
                    kind = candidate
                    break
            row_page, path = lookup(subscriber)
            if row_page is None:
                raise WorkloadError(f"subscriber {subscriber} missing")

            if kind == "get_subscriber_data":
                for page in path:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
            elif kind == "get_access_data":
                for page in path:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._access_base, subscriber))
            elif kind == "get_new_destination":
                for page in path:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._facility_base,
                                                subscriber))
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._forwarding_base,
                                                subscriber))
            elif kind == "update_location":
                for page in path[:-1]:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
                yield step_cls(compute_ns * (0.5 + rng_random()), path[-1], is_write=True)
            elif kind == "update_subscriber_data":
                for page in path[:-1]:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
                yield step_cls(compute_ns * (0.5 + rng_random()), path[-1], is_write=True)
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._facility_base,
                                                subscriber),
                               is_write=True)
            elif kind == "insert_call_forwarding":
                for page in path:
                    yield step_cls(compute_ns * (0.5 + rng_random()), page)
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._facility_base,
                                                subscriber))
                yield step_cls(compute_ns * (0.5 + rng_random()),
                               self._array_page(self._forwarding_base,
                                                subscriber),
                               is_write=True)
            else:  # pragma: no cover - guarded by MIX validation
                raise WorkloadError(f"unknown TATP transaction {kind!r}")
