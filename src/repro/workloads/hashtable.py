"""Chained hash table workload (microbenchmark suite, Sec. V-A).

A real chained hash index: a packed bucket array (many buckets per
page) plus chain entry nodes allocated from a spread heap.  Lookups
touch the bucket page then chase the chain, producing the
pointer-chasing page trace the paper's microbenchmark exercises.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.pagedheap import PagedHeap, SpreadHeap
from repro.workloads.zipf import ZipfianGenerator

# A bucket head pointer is 8 bytes: 512 buckets per 4 KiB page.
BUCKETS_PER_PAGE = 512
ENTRY_SIZE_BYTES = 48


class HashIndex:
    """A bucketed chain hash index with page-path lookups.

    Chains are stored as per-bucket lists of ``(key, page)`` tuples in
    insertion order and walked newest-first (``reversed``), which is
    the same visit order as the linked-entry representation this
    replaces — but tuples are built at C speed, which matters because
    workload construction loads tens of thousands of keys per run.
    """

    def __init__(self, num_buckets: int, base_page: int, page_budget: int,
                 expected_entries: int) -> None:
        if num_buckets < 1:
            raise WorkloadError("need at least one bucket")
        self.num_buckets = num_buckets
        bucket_pages = -(-num_buckets // BUCKETS_PER_PAGE)  # ceil
        if bucket_pages >= page_budget:
            raise WorkloadError("page budget too small for the bucket array")
        self._bucket_base = base_page
        self._entry_heap = SpreadHeap(
            base_page + bucket_pages, page_budget - bucket_pages,
            expected_entries,
        )
        self._buckets: List[List[Tuple[int, int]]] = [
            [] for _ in range(num_buckets)
        ]
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def _bucket_page(self, bucket: int) -> int:
        return self._bucket_base + bucket // BUCKETS_PER_PAGE

    def _bucket_of(self, key: int) -> int:
        # Fibonacci hashing: cheap and well-spread for integer keys.
        return (key * 2654435761) % self.num_buckets

    def insert(self, key: int) -> List[int]:
        """Insert ``key`` (idempotent); returns touched pages."""
        bucket = self._bucket_of(key)
        pages = [self._bucket_page(bucket)]
        entries = self._buckets[bucket]
        for entry_key, entry_page in reversed(entries):
            pages.append(entry_page)
            if entry_key == key:
                return pages
        page = self._entry_heap.allocate(ENTRY_SIZE_BYTES).page
        entries.append((key, page))
        self._size += 1
        pages.append(page)
        return pages

    def bulk_load(self, keys: Iterable[int]) -> None:
        """Insert distinct, not-yet-present keys in one pass.

        Construction-time fast path: equivalent to calling
        :meth:`insert` per key when no key is already in the index —
        entries are allocated from the heap in the same order and
        prepended to the same buckets, so the resulting structure is
        identical — minus the chain walks and touched-page lists that
        bulk construction throws away.
        """
        keys = list(keys)
        pages = self._entry_heap.allocate_pages(len(keys))
        buckets = self._buckets
        num_buckets = self.num_buckets
        if keys and 0 <= min(keys) and max(keys) * 2654435761 <= 2 ** 62:
            # Exact in int64: vectorize the Fibonacci-hash bucket ids.
            bucket_ids = ((np.asarray(keys, dtype=np.int64) * 2654435761)
                          % num_buckets).tolist()
            for key, page, bucket in zip(keys, pages, bucket_ids):
                buckets[bucket].append((key, page))
        else:
            for key, page in zip(keys, pages):
                buckets[(key * 2654435761) % num_buckets].append((key, page))
        self._size += len(keys)

    def lookup(self, key: int) -> Tuple[Optional[int], List[int]]:
        """(entry page or None, touched page path)."""
        # Hottest index operation: _bucket_of/_bucket_page inlined.
        bucket = (key * 2654435761) % self.num_buckets
        pages = [self._bucket_base + bucket // BUCKETS_PER_PAGE]
        for entry_key, entry_page in reversed(self._buckets[bucket]):
            pages.append(entry_page)
            if entry_key == key:
                return entry_page, pages
        return None, pages

    def average_chain_length(self) -> float:
        lengths = [len(entries) for entries in self._buckets]
        return sum(lengths) / len(lengths)


class HashTableWorkload(Workload):
    """Zipfian key lookups/updates against the chained hash index."""

    name = "hashtable"
    rob_occupancy = 48.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.55,
                 ops_per_job: int = 16, compute_ns: float = 150.0,
                 write_fraction: float = 0.10) -> None:
        super().__init__(dataset_pages, seed)
        if num_keys is None:
            num_keys = min(1 << 16, max(1024, dataset_pages * 2))
        self.num_keys = num_keys
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self.write_fraction = write_fraction

        num_buckets = max(BUCKETS_PER_PAGE, num_keys // 2)
        self.index = HashIndex(num_buckets, base_page=0,
                               page_budget=dataset_pages,
                               expected_entries=num_keys)
        self.index.bulk_load(range(num_keys))
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                         permute=False)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        # _compute is inlined (same draw, same bits — see Workload._compute).
        step_cls = Step
        sample = self._zipf.sample
        lookup = self.index.lookup
        rng_random = self._rng_random
        compute_ns = self.compute_ns
        write_fraction = self.write_fraction
        for _ in range(self.ops_per_job):
            key = sample()
            entry_page, path = lookup(key)
            if entry_page is None:
                raise WorkloadError(f"key {key} missing from hash index")
            is_write = rng_random() < write_fraction
            # All path pages are reads; the final entry access may be a
            # value update (write to the entry's page).
            for page in path[:-1]:
                yield step_cls(compute_ns * (0.5 + rng_random()), page)
            yield step_cls(compute_ns * (0.5 + rng_random()), path[-1],
                           is_write=is_write)
