"""Footprint-cache extension (Jevdjic et al., cited as [36]).

Sec. II-A notes that flash refill bandwidth can be cut further with
"optimizations such as Footprint Cache": instead of fetching the whole
4 KiB page on a miss, fetch only the blocks the page's *footprint* —
the subset actually used while resident — predicts.

This module provides the predictor.  Pages are grouped into regions
(footprints correlate strongly within a data-structure region); each
region keeps an exponentially-weighted estimate of how many 64 B blocks
of a page get touched per residency.  The backside controller fetches
``predicted + safety`` blocks; on eviction it trains the predictor with
the page's observed access count and records whether the fetch was an
under- or over-estimate.

Model note (DESIGN.md): the simulator tracks per-page access *counts*
rather than per-block bitmaps, so the number of distinct blocks touched
is approximated by the access count capped at the blocks-per-page —
exact for the paper's sparse access patterns where temporal reuse of a
block within one residency is served by the on-chip caches anyway.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.stats import CounterSet
from repro.units import CACHE_BLOCK_SIZE, PAGE_SIZE

BLOCKS_PER_PAGE = PAGE_SIZE // CACHE_BLOCK_SIZE


class FootprintPredictor:
    """Per-region EWMA predictor of blocks used per page residency."""

    def __init__(self, region_pages: int = 64, safety_blocks: int = 4,
                 ewma_alpha: float = 0.25,
                 blocks_per_page: int = BLOCKS_PER_PAGE) -> None:
        if region_pages < 1:
            raise ConfigurationError("region must cover at least one page")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0,1]")
        if not 0 <= safety_blocks <= blocks_per_page:
            raise ConfigurationError("safety margin out of range")
        self.region_pages = region_pages
        self.safety_blocks = safety_blocks
        self.ewma_alpha = ewma_alpha
        self.blocks_per_page = blocks_per_page
        self._estimates: Dict[int, float] = {}
        self.stats = CounterSet("footprint")

    def _region(self, page: int) -> int:
        return page // self.region_pages

    def predict_blocks(self, page: int) -> int:
        """Blocks to fetch for a refill of ``page``.

        Cold regions fetch the full page (no history to trust).
        """
        estimate = self._estimates.get(self._region(page))
        if estimate is None:
            self.stats.add("cold_predictions")
            return self.blocks_per_page
        predicted = min(self.blocks_per_page,
                        int(estimate + 0.5) + self.safety_blocks)
        self.stats.add("predictions")
        return max(1, predicted)

    def predict_bytes(self, page: int) -> int:
        return self.predict_blocks(page) * CACHE_BLOCK_SIZE

    def record_eviction(self, page: int, accesses_while_resident: int,
                        fetched_blocks: int) -> None:
        """Train on the observed footprint of an evicted page."""
        used = min(self.blocks_per_page, max(0, accesses_while_resident))
        region = self._region(page)
        old = self._estimates.get(region)
        if old is None:
            self._estimates[region] = float(used)
        else:
            self._estimates[region] = (
                (1.0 - self.ewma_alpha) * old + self.ewma_alpha * used
            )
        self.stats.add("trainings")
        if used > fetched_blocks:
            # The residency needed blocks the fetch did not bring: in
            # hardware these trigger secondary fills.
            self.stats.add("underfetches")
            self.stats.add("underfetched_blocks", used - fetched_blocks)
        else:
            self.stats.add("overfetched_blocks", fetched_blocks - used)

    def underfetch_rate(self) -> float:
        return self.stats.ratio("underfetches", "trainings")

    def mean_estimate(self) -> float:
        if not self._estimates:
            return float(self.blocks_per_page)
        return sum(self._estimates.values()) / len(self._estimates)
