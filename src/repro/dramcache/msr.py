"""Miss Status Row: in-DRAM tracking of outstanding DRAM-cache misses.

On-chip caches track concurrent misses in CAM-based MSHRs, but with
50 us refills a DRAM cache can have hundreds outstanding, which would
make SRAM MSHRs prohibitively expensive.  AstriFlash instead keeps the
miss-handling entries in a specialized DRAM row (8 B per entry,
set-associative, searched with a CAS).  This module models that table:
bounded capacity, duplicate-miss coalescing, and per-entry waiter
signals fired when the page is installed (Sec. IV-B2).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.obs.tracer import active as _tracer_active
from repro.sim import Engine, Signal
from repro.stats import CounterSet


class MsrEntry:
    """One outstanding miss: the page plus its install signal."""

    __slots__ = ("page", "allocated_at", "is_write", "install_signal", "coalesced")

    def __init__(self, engine: Engine, page: int, is_write: bool) -> None:
        self.page = page
        self.allocated_at = engine.now
        self.is_write = is_write
        self.install_signal = Signal(engine, f"msr-install:{page}")
        self.coalesced = 0  # duplicate misses merged into this entry

    def __repr__(self) -> str:
        return f"<MsrEntry page={self.page} coalesced={self.coalesced}>"


class MissStatusRow:
    """The in-DRAM miss table with bounded capacity.

    ``free_signal`` consumers: when the table is full the backside
    controller parks on :meth:`wait_for_free` and retries after the
    next release.
    """

    def __init__(self, engine: Engine, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("MSR needs at least one entry")
        self.engine = engine
        self.capacity = capacity
        self._entries: Dict[int, MsrEntry] = {}
        self._free_waiters = []
        self.stats = CounterSet("msr")
        self._tracer = _tracer_active()
        self._peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def peak_occupancy(self) -> int:
        return self._peak_occupancy

    def lookup(self, page: int) -> Optional[MsrEntry]:
        """CAS search for a pending miss to ``page``."""
        self.stats.add("lookups")
        return self._entries.get(page)

    def allocate(self, page: int, is_write: bool) -> MsrEntry:
        """Allocate an entry; raises :class:`CapacityError` when full."""
        if page in self._entries:
            raise ProtocolError(f"duplicate MSR allocation for page {page}")
        if self.is_full:
            raise CapacityError("MSR full")
        entry = MsrEntry(self.engine, page, is_write)
        self._entries[page] = entry
        self.stats.add("allocations")
        self._peak_occupancy = max(self._peak_occupancy, len(self._entries))
        if self._tracer is not None:
            self._tracer.counter("msr", self.engine.now,
                                 float(len(self._entries)))
        return entry

    def coalesce(self, page: int, is_write: bool) -> MsrEntry:
        """Merge a duplicate miss into the existing entry."""
        entry = self._entries.get(page)
        if entry is None:
            raise ProtocolError(f"coalesce without pending entry for page {page}")
        entry.coalesced += 1
        if is_write:
            entry.is_write = True
        self.stats.add("coalesced")
        return entry

    def note_reissue(self, page: int) -> MsrEntry:
        """Record a flash-read reissue for a still-outstanding miss.

        The resilience path (DESIGN.md §4f) retries timed-out or
        uncorrectable reads without releasing the entry — the miss is
        still one miss, it just took several device attempts.  Requires
        a pending entry: reissuing a read nobody is tracking would mean
        the BC lost an MSR entry.
        """
        entry = self._entries.get(page)
        if entry is None:
            raise ProtocolError(
                f"flash reissue without pending MSR entry for page {page}"
            )
        self.stats.add("reissues")
        return entry

    def release(self, page: int) -> MsrEntry:
        """Remove the entry on install completion and wake one waiter
        parked on a full table."""
        entry = self._entries.pop(page, None)
        if entry is None:
            raise ProtocolError(f"release of missing MSR entry for page {page}")
        self.stats.add("releases")
        if self._tracer is not None:
            self._tracer.counter("msr", self.engine.now,
                                 float(len(self._entries)))
        if self._free_waiters:
            self._free_waiters.pop(0).fire()
        return entry

    def wait_for_free(self) -> Optional[Signal]:
        """Returns a signal to yield on while the table is full, or
        None when space is available right now."""
        if not self.is_full:
            return None
        self.stats.add("full_stalls")
        signal = Signal(self.engine, "msr-free")
        self._free_waiters.append(signal)
        return signal
