"""TATP telecom workload (Sec. V-A).

The Telecom Application Transaction Processing benchmark: short
transactions against a subscriber database.  The paper highlights
'update subscriber data'; we implement the standard mix (read-heavy,
~20 % writes) over four table regions:

* subscribers   — hash index + row pages;
* access info   — fixed-size array keyed by subscriber;
* special facility / call forwarding — fixed-size arrays.

Average transactions take ~10 us (Sec. VI-C uses TATP for the
tail-latency study for exactly that reason).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.hashtable import HashIndex
from repro.workloads.zipf import ZipfianGenerator

ROWS_PER_PAGE = 16  # 256-byte subscriber rows


class TatpWorkload(Workload):
    """The TATP transaction mix with Zipfian subscriber popularity."""

    name = "tatp"
    rob_occupancy = 56.0

    # (transaction, weight) — the standard TATP mix.
    MIX = (
        ("get_subscriber_data", 0.35),
        ("get_access_data", 0.35),
        ("get_new_destination", 0.10),
        ("update_location", 0.14),
        ("update_subscriber_data", 0.02),
        ("insert_call_forwarding", 0.04),
    )

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_subscribers: Optional[int] = None, zipf_s: float = 1.55,
                 transactions_per_job: int = 8,
                 compute_ns: float = 150.0) -> None:
        super().__init__(dataset_pages, seed)
        if num_subscribers is None:
            num_subscribers = min(1 << 16, max(1024, dataset_pages * 4))
        self.num_subscribers = num_subscribers
        self.transactions_per_job = transactions_per_job
        self.compute_ns = compute_ns

        # Region layout over the page budget.
        index_budget = max(8, int(dataset_pages * 0.40))
        region_budget = max(4, (dataset_pages - index_budget) // 3)
        self._access_base = index_budget
        self._facility_base = index_budget + region_budget
        self._forwarding_base = index_budget + 2 * region_budget
        self._region_budget = region_budget

        self.index = HashIndex(
            max(512, num_subscribers // 2), base_page=0,
            page_budget=index_budget, expected_entries=num_subscribers,
        )
        for subscriber in range(num_subscribers):
            self.index.insert(subscriber)
        self._zipf = ZipfianGenerator(num_subscribers, zipf_s,
                                         seed=seed + 1, permute=False)

        weights = [weight for _, weight in self.MIX]
        if abs(sum(weights) - 1.0) > 1e-9:
            raise WorkloadError("TATP mix weights must sum to 1")

    # -- table addressing -----------------------------------------------------

    def _array_page(self, base: int, subscriber: int) -> int:
        slot = (subscriber * self._region_budget * ROWS_PER_PAGE
                // self.num_subscribers) // ROWS_PER_PAGE
        return base + min(slot, self._region_budget - 1)

    def _pick_transaction(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for kind, weight in self.MIX:
            cumulative += weight
            if roll < cumulative:
                return kind
        return self.MIX[-1][0]

    # -- transactions -------------------------------------------------------------

    def _transaction_steps(self, kind: str, subscriber: int) -> Iterator[Step]:
        row_page, path = self.index.lookup(subscriber)
        if row_page is None:
            raise WorkloadError(f"subscriber {subscriber} missing")
        compute = self.compute_ns

        if kind == "get_subscriber_data":
            for page in path:
                yield Step(self._compute(compute), page)
        elif kind == "get_access_data":
            for page in path:
                yield Step(self._compute(compute), page)
            yield Step(self._compute(compute),
                       self._array_page(self._access_base, subscriber))
        elif kind == "get_new_destination":
            for page in path:
                yield Step(self._compute(compute), page)
            yield Step(self._compute(compute),
                       self._array_page(self._facility_base, subscriber))
            yield Step(self._compute(compute),
                       self._array_page(self._forwarding_base, subscriber))
        elif kind == "update_location":
            for page in path[:-1]:
                yield Step(self._compute(compute), page)
            yield Step(self._compute(compute), path[-1], is_write=True)
        elif kind == "update_subscriber_data":
            for page in path[:-1]:
                yield Step(self._compute(compute), page)
            yield Step(self._compute(compute), path[-1], is_write=True)
            yield Step(self._compute(compute),
                       self._array_page(self._facility_base, subscriber),
                       is_write=True)
        elif kind == "insert_call_forwarding":
            for page in path:
                yield Step(self._compute(compute), page)
            yield Step(self._compute(compute),
                       self._array_page(self._facility_base, subscriber))
            yield Step(self._compute(compute),
                       self._array_page(self._forwarding_base, subscriber),
                       is_write=True)
        else:  # pragma: no cover - guarded by MIX validation
            raise WorkloadError(f"unknown TATP transaction {kind!r}")

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.transactions_per_job):
            subscriber = self._zipf.sample()
            kind = self._pick_transaction()
            yield from self._transaction_steps(kind, subscriber)
