"""Array Swap microbenchmark (Sec. V-A).

"Each operation swaps two array elements, generating both reads and
writes."  A flat 8-byte-element array spans the whole scaled dataset;
element popularity is Zipfian over pages (hot pages concentrate
accesses the way hot objects do), and each swap reads then writes both
element pages.
"""

from __future__ import annotations

from typing import Iterator

from repro.workloads.base import Job, Step, Workload
from repro.workloads.zipf import ZipfianGenerator

ELEMENTS_PER_PAGE = 512  # 8-byte elements on a 4 KiB page


class ArraySwapWorkload(Workload):
    """Zipfian element swaps over a page-spanning array."""

    name = "arrayswap"
    rob_occupancy = 48.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 zipf_s: float = 1.55, ops_per_job: int = 12,
                 compute_ns: float = 150.0) -> None:
        super().__init__(dataset_pages, seed)
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self._zipf = ZipfianGenerator(dataset_pages, zipf_s, seed=seed + 1)

    @property
    def num_elements(self) -> int:
        return self.dataset_pages * ELEMENTS_PER_PAGE

    def plan_steps(self, job):
        """Numpy planner for the vector backend.

        Draw-for-draw identical to iterating :meth:`_steps_for_job`:
        the zipf stream yields ``a, b`` per op (one buffered block
        here), then the workload RNG yields four jitters per op (one
        buffered Mersenne-Twister block).  The jitter expression
        ``compute_ns * (0.5 + r)`` is a float64 elementwise op either
        way, so the bits match.
        """
        ops = self.ops_per_job
        pairs = self._zipf.sample_block(2 * ops)
        jitter = self._planner_rng().take(4 * ops)
        return self._columns_from(pairs, jitter, ops)

    def plan_compute_block(self, num_jobs):
        """Compute columns for ``num_jobs`` upcoming jobs at once
        (fused DRAM-only backend); ``(compute_ns_array, steps_per_job)``.

        Only the jitter stream is drawn: the fused loop never observes
        addresses, and RNG stream *positions* sit outside the
        bit-identity contract (fingerprints, stats), so the zipf
        address draws are skipped rather than drawn and discarded.
        The jitter draws themselves stay stream-exact — consecutive
        per-job blocks in job order, as the scalar generator consumes
        them.
        """
        steps_per_job = 4 * self.ops_per_job
        jitter = self._planner_rng().take(steps_per_job * num_jobs)
        return self.compute_ns * (0.5 + jitter), steps_per_job

    @property
    def uniform_steps_per_job(self) -> int:
        """Every job has the same step count (merged-loop dealing)."""
        return 4 * self.ops_per_job

    def plan_step_block(self, num_steps):
        """Compute values for the next ``num_steps`` steps as one
        global per-step stream (merged open-loop/multi-core backend).

        Unlike :meth:`plan_compute_block` this is *not* aligned to job
        boundaries: the merged loop deals steps to cores in global
        event order, which for the jitter stream is exactly the order
        the scalar generators would draw (jitter draws happen at step
        generation, one per step, regardless of which core's job pulls
        next).  Zipf address draws are skipped — DRAM-only mode never
        observes pages, and RNG stream positions sit outside the
        bit-identity contract.
        """
        jitter = self._planner_rng().take(num_steps)
        return self.compute_ns * (0.5 + jitter)

    def _columns_from(self, pairs, jitter, ops):
        compute = (self.compute_ns * (0.5 + jitter)).tolist()
        pages = []
        for op in range(ops):
            page_a = pairs[2 * op]
            page_b = pairs[2 * op + 1]
            pages += (page_a, page_b, page_a, page_b)
        writes = [False, False, True, True] * ops
        return compute, pages, writes

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        # _compute is inlined (same draw, same bits — see Workload._compute).
        step = Step
        sample = self._zipf.sample
        rng_random = self._rng_random
        compute_ns = self.compute_ns
        for _ in range(self.ops_per_job):
            page_a = sample()
            page_b = sample()
            # Read both elements, then write both back swapped.
            yield step(compute_ns * (0.5 + rng_random()), page_a)
            yield step(compute_ns * (0.5 + rng_random()), page_b)
            yield step(compute_ns * (0.5 + rng_random()), page_a, is_write=True)
            yield step(compute_ns * (0.5 + rng_random()), page_b, is_write=True)
