"""Discrete-event simulation kernel (event queue, processes, resources)."""

from repro.sim.engine import Engine, Event
from repro.sim.process import Process, ProcessGenerator, Signal, observe, spawn
from repro.sim.resources import Ready, Server, Store

__all__ = [
    "Engine",
    "Event",
    "Process",
    "ProcessGenerator",
    "Ready",
    "Server",
    "Signal",
    "observe",
    "Store",
    "spawn",
]
