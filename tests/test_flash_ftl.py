"""Unit tests for the page-mapping FTL."""

import pytest

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.flash.ftl import Block, PageMappingFtl, PlaneState


def make_ftl(pages=256, planes=2, pages_per_block=16, op=0.25):
    return PageMappingFtl(pages, planes, pages_per_block, op)


class TestBlock:
    def test_erase_resets_state(self):
        block = Block(0, 4)
        block.valid[0] = 7
        block.write_offset = 1
        block.valid[0] = None
        block.erase()
        assert block.erase_count == 1
        assert block.write_offset == 0

    def test_erase_with_valid_pages_raises(self):
        block = Block(0, 4)
        block.valid[0] = 7
        with pytest.raises(ProtocolError):
            block.erase()


class TestPlaneState:
    def test_allocate_fills_open_block_then_free_list(self):
        plane = PlaneState(0, num_blocks=3, pages_per_block=2)
        slots = [plane.allocate(i) for i in range(4)]
        assert slots[0] == (0, 0)
        assert slots[1] == (0, 1)
        assert slots[2][0] != 0  # moved to a free block

    def test_out_of_blocks_raises(self):
        plane = PlaneState(0, num_blocks=2, pages_per_block=1)
        plane.allocate(0)
        plane.allocate(1)
        with pytest.raises(CapacityError):
            plane.allocate(2)

    def test_one_block_plane_rejected(self):
        with pytest.raises(ConfigurationError):
            PlaneState(0, num_blocks=1, pages_per_block=4)

    def test_gc_victim_prefers_most_garbage(self):
        plane = PlaneState(0, num_blocks=4, pages_per_block=2)
        slots = [plane.allocate(i) for i in range(6)]  # fill 3 blocks
        # Invalidate both pages of the second filled block.
        plane.invalidate(slots[2])
        plane.invalidate(slots[3])
        # And one page of the first.
        plane.invalidate(slots[0])
        victim = plane.gc_victim()
        assert victim == slots[2][0]

    def test_gc_victim_skips_fully_valid_blocks(self):
        plane = PlaneState(0, num_blocks=3, pages_per_block=2)
        for i in range(2):
            plane.allocate(i)
        assert plane.gc_victim() is None

    def test_gc_victim_none_when_all_blocks_free(self):
        plane = PlaneState(0, num_blocks=4, pages_per_block=2)
        assert plane.gc_victim() is None

    def test_gc_victim_tie_breaks_on_erase_count(self):
        plane = PlaneState(0, num_blocks=4, pages_per_block=2)
        # Fill three blocks so the first two are closed (the third
        # stays the open block, which gc_victim must skip).
        slots = [plane.allocate(i) for i in range(6)]
        plane.invalidate(slots[1])  # one garbage page in block A
        plane.invalidate(slots[3])  # one garbage page in block B
        block_a, block_b = slots[0][0], slots[2][0]
        plane.blocks[block_a].erase_count = 5
        plane.blocks[block_b].erase_count = 2
        # Equal garbage: the less-worn block is collected first.
        assert plane.gc_victim() == block_b

    def test_gc_victim_tie_breaks_on_index_when_wear_equal(self):
        plane = PlaneState(0, num_blocks=4, pages_per_block=2)
        slots = [plane.allocate(i) for i in range(6)]
        plane.invalidate(slots[1])
        plane.invalidate(slots[3])
        # Equal garbage, equal wear: deterministic lowest-index pick.
        assert plane.gc_victim() == min(slots[0][0], slots[2][0])
        assert plane.gc_victim() == plane.gc_victim()

    def test_double_invalidate_raises(self):
        plane = PlaneState(0, num_blocks=2, pages_per_block=2)
        slot = plane.allocate(0)
        plane.invalidate(slot)
        with pytest.raises(ProtocolError):
            plane.invalidate(slot)


class TestPageMappingFtl:
    def test_unwritten_pages_stripe_round_robin(self):
        ftl = make_ftl(planes=4)
        assert ftl.plane_of(0) == 0
        assert ftl.plane_of(1) == 1
        assert ftl.plane_of(5) == 1

    def test_write_keeps_page_on_its_plane(self):
        ftl = make_ftl(planes=4)
        plane = ftl.write(9)
        assert plane == 9 % 4
        assert ftl.plane_of(9) == plane
        assert ftl.is_mapped(9)

    def test_overwrite_invalidates_old_slot(self):
        ftl = make_ftl()
        ftl.write(3)
        ftl.write(3)
        plane = ftl.planes[ftl.plane_of(3)]
        total_valid = sum(block.valid_count for block in plane.blocks)
        assert total_valid == 1  # only the newest copy is valid

    def test_out_of_range_page_raises(self):
        ftl = make_ftl(pages=8)
        with pytest.raises(ProtocolError):
            ftl.plane_of(8)
        with pytest.raises(ProtocolError):
            ftl.write(-1)

    def test_collect_reclaims_garbage(self):
        ftl = make_ftl(pages=16, planes=1, pages_per_block=4, op=0.5)
        # Write the same small working set repeatedly to build garbage.
        for _ in range(10):
            for page in range(4):
                ftl.write(page)
                if ftl.gc_pressure(0):
                    migrated, erased = ftl.collect(0)
                    assert erased in (0, 1)
        # All 4 logical pages must still be mapped and valid exactly once.
        plane = ftl.planes[0]
        valid = sum(block.valid_count for block in plane.blocks)
        assert valid == 4
        assert ftl.stats["gc_erases"] >= 1

    def test_collect_preserves_mapping_correctness(self):
        ftl = make_ftl(pages=32, planes=1, pages_per_block=4, op=0.5)
        for round_number in range(8):
            for page in range(4):
                ftl.write(page)
                while ftl.gc_pressure(0):
                    if ftl.collect(0) == (0, 0):
                        break
        for page in range(4):
            plane_index, slot = ftl._mapping[page]
            block = ftl.planes[plane_index].blocks[slot[0]]
            assert block.valid[slot[1]] == page

    def test_wear_imbalance(self):
        ftl = make_ftl(pages=16, planes=1, pages_per_block=4, op=0.5)
        assert ftl.wear_imbalance() == 0.0
        for _ in range(12):
            for page in range(4):
                ftl.write(page)
                while ftl.gc_pressure(0):
                    if ftl.collect(0) == (0, 0):
                        break
        assert ftl.wear_imbalance() >= 1.0

    def test_wear_imbalance_uniform_wear_is_exactly_level(self):
        ftl = make_ftl(pages=16, planes=2, pages_per_block=4, op=0.5)
        assert ftl.wear_imbalance() == 0.0  # no erase history at all
        for plane in ftl.planes:
            for block in plane.blocks:
                block.erase_count = 3
        assert ftl.wear_imbalance() == pytest.approx(1.0)

    def test_erase_count_of_unwritten_page_is_zero(self):
        ftl = make_ftl(pages=16, planes=2, pages_per_block=4, op=0.5)
        assert ftl.erase_count_of(0) == 0
        with pytest.raises(ProtocolError):
            ftl.erase_count_of(16)

    def test_invalid_construction_raises(self):
        with pytest.raises(ConfigurationError):
            PageMappingFtl(0, 1, 16, 0.1)
        with pytest.raises(ConfigurationError):
            PageMappingFtl(16, 1, 16, 1.5)
