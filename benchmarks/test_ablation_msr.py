"""Ablation: Miss Status Row capacity.

The in-DRAM MSR exists because the DRAM cache can have hundreds of
concurrent misses (Sec. IV-B2).  Shrinking it to SRAM-MSHR-like sizes
forces the backside controller to stall admissions, which shows up as
MSR full-stalls and lost throughput.
"""

import dataclasses

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.workloads import make_workload

MSR_SIZES = (2, 8, 512)


def sweep(scale_name):
    scale = resolve_scale(scale_name)
    outcomes = {}
    for entries in MSR_SIZES:
        config = build_config("astriflash", scale)
        config.dram_cache = dataclasses.replace(
            config.dram_cache, msr_entries=entries
        )
        workload = make_workload("arrayswap", scale.dataset_pages, seed=42,
                                 **scale.workload_kwargs())
        runner = Runner(config, workload)
        result = runner.run()
        msr = runner.machine.dram_cache.backside.msr
        outcomes[entries] = {
            "throughput": result.throughput_jobs_per_s,
            "full_stalls": msr.stats["full_stalls"],
            "peak": msr.peak_occupancy,
        }
    return outcomes


def test_ablation_msr(benchmark, harness_scale):
    outcomes = run_once(benchmark, sweep, harness_scale)
    print("\nMSR capacity sweep:")
    for entries, data in outcomes.items():
        print(f"  {entries:4d} entries -> {data['throughput']:10,.0f} jobs/s"
              f"  peak={data['peak']}  full_stalls={data['full_stalls']:.0f}")

    # A 2-entry MSR (SRAM-MSHR scale) stalls the admission path.
    assert outcomes[2]["full_stalls"] > 0
    # A big in-DRAM MSR never fills at this scale.
    assert outcomes[512]["full_stalls"] == 0
    assert outcomes[512]["peak"] < 512
    # Capacity is never exceeded.
    for entries, data in outcomes.items():
        assert data["peak"] <= entries
