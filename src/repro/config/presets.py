"""The seven evaluated configurations (paper Sec. V-B).

1. ``DRAM-only``        — ideal: all data served from DRAM.
2. ``AstriFlash``       — the proposal (priority scheduler, 100 ns switch).
3. ``AstriFlash-Ideal`` — AstriFlash with free thread switches.
4. ``AstriFlash-noPS``  — FIFO scheduling instead of priority+aging.
5. ``AstriFlash-noDP``  — no DRAM partitioning: page-table walks can go
   to flash.
6. ``OS-Swap``          — traditional OS demand paging over flash.
7. ``Flash-Sync``       — FlatFlash-style synchronous flash accesses.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.config.system import (
    PagingMode,
    SchedulingPolicy,
    SystemConfig,
)

EVALUATED_CONFIG_NAMES: List[str] = [
    "dram-only",
    "astriflash",
    "astriflash-ideal",
    "astriflash-nops",
    "astriflash-nodp",
    "os-swap",
    "flash-sync",
]


def baseline_config(**overrides) -> SystemConfig:
    """The common Table-I machine; keyword overrides apply on top."""
    config = SystemConfig()
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise AttributeError(f"SystemConfig has no field {key!r}")
        setattr(config, key, value)
    return config


def dram_only(**overrides) -> SystemConfig:
    config = baseline_config(**overrides)
    config.name = "dram-only"
    config.mode = PagingMode.DRAM_ONLY
    return config


def astriflash(**overrides) -> SystemConfig:
    config = baseline_config(**overrides)
    config.name = "astriflash"
    config.mode = PagingMode.ASTRIFLASH
    return config


def astriflash_ideal(**overrides) -> SystemConfig:
    config = astriflash(**overrides)
    config.name = "astriflash-ideal"
    config.ult = dataclasses.replace(config.ult, switch_latency_ns=0.0)
    # The ideal variant also has no ROB-flush penalty for miss signals.
    config.core = dataclasses.replace(config.core, flush_cycles_per_rob_entry=0.0)
    return config


def astriflash_nops(**overrides) -> SystemConfig:
    config = astriflash(**overrides)
    config.name = "astriflash-nops"
    config.ult = dataclasses.replace(config.ult, policy=SchedulingPolicy.FIFO)
    return config


def astriflash_nodp(**overrides) -> SystemConfig:
    config = astriflash(**overrides)
    config.name = "astriflash-nodp"
    config.dram_cache = dataclasses.replace(
        config.dram_cache, partitioning_enabled=False
    )
    return config


def _shrink_flash_for_writes(config: SystemConfig) -> None:
    """Write-path device geometry (DESIGN.md §4j).

    The default 256-plane geometry keeps so much free physical space
    at harness scale that steady-state GC is unreachable inside a
    measurement window.  The write presets model a small write-
    optimized device instead: 8 planes, 8-page blocks (which also
    erase much faster than the default 256-page blocks), SLC-style
    50 us programs, and a tight write buffer, so a write-heavy window
    actually turns the physical space over and the WA/lifetime
    machinery has something to measure.  Over-provisioning is high
    (0.9) because the FTL reserves three blocks per plane (open + two
    free) regardless of size: with 8-page blocks that reserve is a
    large fraction of a plane, and the usable space left over must
    still exceed the workload's dirtied footprint or steady-state GC
    has nothing to compact into.
    """
    config.writes = dataclasses.replace(config.writes, enabled=True)
    config.flash = dataclasses.replace(
        config.flash,
        channels=2,
        dies_per_channel=2,
        planes_per_die=2,
        pages_per_block=8,
        overprovisioning=0.9,
        program_latency_ns=50_000.0,
        erase_latency_ns=500_000.0,
        write_buffer_pages=64,
        gc_policy="tiny-tail",
    )


def astriflash_writes(**overrides) -> SystemConfig:
    """AstriFlash with the write path enabled (``repro writes``)."""
    config = astriflash(**overrides)
    config.name = "astriflash-writes"
    _shrink_flash_for_writes(config)
    return config


def flash_sync_writes(**overrides) -> SystemConfig:
    """Flash-Sync with the write path enabled (``repro writes``)."""
    config = flash_sync(**overrides)
    config.name = "flash-sync-writes"
    _shrink_flash_for_writes(config)
    return config


def os_swap(**overrides) -> SystemConfig:
    config = baseline_config(**overrides)
    config.name = "os-swap"
    config.mode = PagingMode.OS_SWAP
    return config


def flash_sync(**overrides) -> SystemConfig:
    config = baseline_config(**overrides)
    config.name = "flash-sync"
    config.mode = PagingMode.FLASH_SYNC
    return config


_FACTORIES = {
    "dram-only": dram_only,
    "astriflash": astriflash,
    "astriflash-ideal": astriflash_ideal,
    "astriflash-nops": astriflash_nops,
    "astriflash-nodp": astriflash_nodp,
    "os-swap": os_swap,
    "flash-sync": flash_sync,
    # Write-path presets (DESIGN.md §4j): in the factory map so
    # make_config and the `repro writes` sweep can build them, but
    # outside EVALUATED_CONFIG_NAMES — the paper's figures stay on the
    # seven read-dominant configurations.
    "astriflash-writes": astriflash_writes,
    "flash-sync-writes": flash_sync_writes,
}


def make_config(name: str, **overrides) -> SystemConfig:
    """Build one of the seven evaluated configurations by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown configuration {name!r}; known: {known}") from None
    return factory(**overrides)


def all_configs(**overrides) -> Dict[str, SystemConfig]:
    """All seven evaluated configurations keyed by name."""
    return {name: make_config(name, **overrides) for name in EVALUATED_CONFIG_NAMES}
