"""Measurement utilities: counters, histograms, latency/throughput trackers."""

from repro.stats.counters import CounterSet
from repro.stats.histogram import ExactReservoir, LogHistogram, percentile
from repro.stats.sampling import (
    SampledMeasurement,
    measure,
    measure_until,
    summarize,
    t_critical_95,
)
from repro.stats.tracker import LatencyTracker, ThroughputTracker

__all__ = [
    "CounterSet",
    "ExactReservoir",
    "LatencyTracker",
    "LogHistogram",
    "SampledMeasurement",
    "measure",
    "measure_until",
    "summarize",
    "t_critical_95",
    "ThroughputTracker",
    "percentile",
]
