"""Tests for the BC-to-core queue-pair notification mechanism."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.ult import CompletionQueue


class TestCompletionQueue:
    def test_post_and_drain_fifo(self):
        cq = CompletionQueue(core_id=0)
        cq.post(10, now=1.0, context="a")
        cq.post(20, now=2.0, context="b")
        entries = cq.drain()
        assert [e.page for e in entries] == [10, 20]
        assert [e.context for e in entries] == ["a", "b"]
        assert len(cq) == 0

    def test_doorbell_rings_on_post(self):
        rings = []
        cq = CompletionQueue(core_id=1, doorbell=lambda: rings.append(1))
        cq.post(5, now=0.0)
        cq.post(6, now=0.0)
        assert len(rings) == 2

    def test_doorbell_can_be_installed_later(self):
        cq = CompletionQueue(core_id=0)
        rings = []
        cq.set_doorbell(lambda: rings.append(1))
        cq.post(1, now=0.0)
        assert rings == [1]

    def test_capacity_overflow_raises(self):
        cq = CompletionQueue(core_id=0, capacity=2)
        cq.post(1, now=0.0)
        cq.post(2, now=0.0)
        with pytest.raises(CapacityError):
            cq.post(3, now=0.0)

    def test_peek_does_not_consume(self):
        cq = CompletionQueue(core_id=0)
        assert cq.peek() is None
        cq.post(7, now=3.0)
        assert cq.peek().page == 7
        assert len(cq) == 1

    def test_drain_empty_is_noop(self):
        cq = CompletionQueue(core_id=0)
        assert cq.drain() == []
        assert cq.stats["drains"] == 0

    def test_stats(self):
        cq = CompletionQueue(core_id=0)
        cq.post(1, now=0.0)
        cq.post(2, now=0.0)
        cq.drain()
        assert cq.stats["posted"] == 2
        assert cq.stats["drained_entries"] == 2

    def test_invalid_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            CompletionQueue(core_id=0, capacity=0)
