"""Chrome trace-event JSON export and validation.

Converts a :class:`repro.obs.tracer.Tracer`'s collected events into the
Chrome trace-event format (the JSON Array Format with named processes
and threads) so a run opens directly in Perfetto or
``chrome://tracing``.  Mapping:

* each traced **run** becomes one trace *process* (pid), named after
  the run label (``config/workload``);
* each tracer **track** (``core0`` .. ``coreN``, ``flash``, ``bc``,
  ``requests``, ``counters``) becomes one *thread* (tid) of that
  process, in a stable display order;
* ``B``/``E`` slices, ``X`` complete spans, ``i`` instants and ``C``
  counter samples map 1:1; request lifetimes use async ``b``/``e``
  pairs keyed by the request name.

Timestamps: the simulator works in nanoseconds, the trace format in
microseconds; ``ts = ns / 1000.0`` (fractional microseconds are legal
and preserve full resolution).

:func:`validate_trace_events` re-checks the invariants CI relies on —
non-decreasing ``ts``, matched ``B``/``E`` pairs per (pid, tid),
matched async ``b``/``e`` pairs per (pid, id), known phases — without
any external schema dependency.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.tracer import Tracer

#: Display order for well-known track prefixes; unknown tracks sort
#: after these, alphabetically.
_TRACK_ORDER = ("core", "flash", "bc", "requests", "counters")

ALLOWED_PHASES = frozenset("BEXiCMbe")


def _track_sort_key(track: str) -> Tuple[int, str]:
    for rank, prefix in enumerate(_TRACK_ORDER):
        if track.startswith(prefix):
            return (rank, f"{len(track):04d}{track}")  # core2 < core10
    return (len(_TRACK_ORDER), track)


def export_trace_events(tracer: Tracer) -> List[dict]:
    """Flatten the tracer's events into a trace-event list."""
    # Stable tid assignment per (run, track), in display order.
    tracks_per_run: Dict[int, set] = {}
    for event in tracer.events:
        tracks_per_run.setdefault(event[1], set()).add(event[2])
    tids: Dict[Tuple[int, str], int] = {}
    out: List[dict] = []
    for run_index, label in enumerate(tracer.runs):
        pid = run_index + 1
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        ordered = sorted(tracks_per_run.get(run_index, ()),
                         key=_track_sort_key)
        for tid, track in enumerate(ordered, start=1):
            tids[(run_index, track)] = tid
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": track},
            })

    body: List[dict] = []
    for ts, run_index, track, phase, name, args, dur in tracer.events:
        event = {
            "ph": phase,
            "ts": ts / 1000.0,  # ns -> us
            "pid": run_index + 1,
            "tid": tids[(run_index, track)],
        }
        if name is not None:
            event["name"] = name
        if args:
            event["args"] = args
        if phase == "X":
            event["dur"] = dur / 1000.0
        elif phase in ("b", "e"):
            # Async request spans are matched by (cat, id, pid); the
            # request name is unique within a run, so it is the id.
            event["cat"] = "request"
            event["id"] = name
        elif phase == "i":
            event["s"] = "t"  # instant scope: thread
        body.append(event)
    # The trace format wants non-decreasing timestamps; Python's sort
    # is stable, so same-ts events keep their recorded order (an E
    # recorded before a B at the same instant stays before it).
    body.sort(key=lambda e: e["ts"])
    out.extend(body)
    return out


def export_chrome_trace(tracer: Tracer) -> dict:
    """The full JSON Object Format document for one traced session."""
    return {
        "traceEvents": export_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro.obs",
            "runs": list(tracer.runs),
            "requests_traced": len(tracer.completed),
            "dropped_events": tracer.dropped_events,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> dict:
    """Export and write the trace; returns the written document.

    Serialized via :func:`repro.jsonutil.json_safe`: Perfetto rejects
    the non-standard ``Infinity``/``NaN`` tokens ``json.dump`` would
    otherwise emit for non-finite event args.
    """
    from repro.jsonutil import json_safe

    document = export_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(json_safe(document), handle, allow_nan=False)
    return document


# ---------------------------------------------------------------- validate --


def validate_trace_events(events: List[dict]) -> List[str]:
    """Check trace-event invariants; returns a list of problems
    (empty = valid).

    Checked: known phases, required keys, globally non-decreasing
    ``ts`` (metadata exempt), balanced ``B``/``E`` per (pid, tid),
    balanced async ``b``/``e`` per (pid, cat, id), non-negative ``X``
    durations.
    """
    problems: List[str] = []
    last_ts = None
    slice_depth: Dict[Tuple[int, int], int] = {}
    async_open: Dict[Tuple[int, str, str], int] = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {index}: missing pid/tid")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing ts")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: ts {ts} decreases (previous {last_ts})"
            )
        last_ts = ts
        key = (event["pid"], event["tid"])
        if phase == "B":
            slice_depth[key] = slice_depth.get(key, 0) + 1
        elif phase == "E":
            depth = slice_depth.get(key, 0)
            if depth <= 0:
                problems.append(
                    f"event {index}: E without open B on pid/tid {key}"
                )
            else:
                slice_depth[key] = depth - 1
        elif phase == "X":
            if event.get("dur", 0) < 0:
                problems.append(f"event {index}: negative X duration")
        elif phase in ("b", "e"):
            akey = (event["pid"], event.get("cat", ""),
                    str(event.get("id")))
            if phase == "b":
                async_open[akey] = async_open.get(akey, 0) + 1
            else:
                open_count = async_open.get(akey, 0)
                if open_count <= 0:
                    problems.append(
                        f"event {index}: async e without b for {akey}"
                    )
                else:
                    async_open[akey] = open_count - 1
    for key, depth in slice_depth.items():
        if depth != 0:
            problems.append(f"unclosed B slices on pid/tid {key}: {depth}")
    for akey, count in async_open.items():
        if count != 0:
            problems.append(f"unclosed async span {akey}: {count}")
    return problems


def validate_chrome_trace(document: dict) -> List[str]:
    """Validate a full trace document (the JSON Object Format)."""
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    return validate_trace_events(events)
