"""Process-parallel experiment fan-out with a content-addressed cache.

Every paper artifact is a batch of *independent* ``(config, workload,
arrivals, overrides)`` simulations, so regenerating figures is
embarrassingly parallel.  This module provides the fan-out layer the
figure/table modules build on:

* :class:`RunSpec` — a picklable, hashable description of one run.
  Executing a spec (:func:`execute_spec`) reproduces *exactly* what the
  old serial helpers did, so results are bit-identical regardless of
  the number of worker processes.
* :func:`run_specs` — execute a batch across a
  ``ProcessPoolExecutor``, returning results in spec order.  Falls back
  to in-process execution when ``jobs == 1`` (the default, also set via
  ``REPRO_JOBS``) or when a process pool cannot be created.  A crashed
  worker is retried once in-process before a structured
  :class:`ParallelRunError` is raised.
* A content-addressed result cache: spec-hash → pickled
  :class:`~repro.core.runner.SimulationResult` under ``.repro_cache/``
  (override with ``REPRO_CACHE_DIR``; disable with ``REPRO_CACHE=0``).
  The cache directory carries a version stamp combining
  :data:`CACHE_VERSION` with a digest of the ``repro`` package sources,
  so *any* simulator change invalidates stale results.
* :func:`map_tasks` — an uncached generic fan-out for harness stages
  that are not full-system runs (trace generation, device stress sims).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import os
import pickle
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.harness.common import HarnessScale, build_config, resolve_scale
from repro.core import Runner
from repro.workloads import arrival_from_spec

# Bump manually on semantic changes that the source digest cannot see
# (e.g. a pickle-format change in SimulationResult).
CACHE_VERSION = 1

_STAMP_NAME = "CACHE_VERSION"


class ParallelRunError(ReproError):
    """A run spec failed (after the one crash retry the pool allows).

    Carries the failing spec and the underlying cause so sweep drivers
    can report *which* point of a batch died.
    """

    def __init__(self, spec: "RunSpec", cause: BaseException) -> None:
        super().__init__(f"run spec {spec.label()} failed: {cause!r}")
        self.spec = spec
        self.cause = cause


# --------------------------------------------------------------- run specs --


@dataclass(frozen=True)
class RunSpec:
    """One full-system simulation, described by value.

    ``arrivals`` is ``None`` for a closed loop or the tuple returned by
    :func:`poisson`; ``workload_overrides`` are extra keyword arguments
    for :func:`~repro.workloads.make_workload`; ``config_overrides``
    are ``(dotted_path, value)`` pairs applied to the built
    :class:`~repro.config.SystemConfig` (e.g.
    ``("scale.dram_fraction", 0.05)``).
    """

    config_name: str
    workload_name: str
    scale: Union[str, HarnessScale]
    seed: int = 42
    arrivals: Optional[Tuple] = None
    workload_overrides: Tuple[Tuple[str, Any], ...] = ()
    config_overrides: Tuple[Tuple[str, Any], ...] = ()

    def label(self) -> str:
        scale = self.scale.name if isinstance(self.scale, HarnessScale) \
            else self.scale
        return f"{self.config_name}/{self.workload_name}@{scale}"


def poisson(mean_interarrival_ns: float, seed: int = 42) -> Tuple:
    """Arrival spec for open-loop Poisson arrivals (picklable tuple).

    ``mean_interarrival_ns`` is *per core* (each core runs its own
    arrival stream; see :mod:`repro.workloads.arrival`): a machine
    with N cores sees an aggregate rate of ``N / mean``.
    """
    return ("poisson", float(mean_interarrival_ns), int(seed))


def mmpp(mean_interarrival_ns: float, burst_interarrival_ns: float,
         mean_dwell_ns: float, burst_dwell_ns: float, seed: int = 42,
         streams: int = 1) -> Tuple:
    """Arrival spec for bursty two-state MMPP arrivals (per-core
    means; ``streams`` = cores sharing the process object)."""
    return ("mmpp", float(mean_interarrival_ns),
            float(burst_interarrival_ns), float(mean_dwell_ns),
            float(burst_dwell_ns), int(seed), int(streams))


def diurnal(mean_interarrival_ns: float, period_ns: float,
            amplitude: float = 0.5, seed: int = 42,
            streams: int = 1) -> Tuple:
    """Arrival spec for sinusoidally rate-modulated arrivals."""
    return ("diurnal", float(mean_interarrival_ns), float(period_ns),
            float(amplitude), int(seed), int(streams))


def trace(gaps_ns, cycle: bool = False) -> Tuple:
    """Arrival spec replaying recorded inter-arrival gaps."""
    return ("trace", tuple(float(gap) for gap in gaps_ns), bool(cycle))


def make_spec(config_name: str, workload_name: str, scale,
              seed: int = 42, arrivals: Optional[Tuple] = None,
              workload_overrides: Optional[Mapping[str, Any]] = None,
              config_overrides: Optional[Mapping[str, Any]] = None
              ) -> RunSpec:
    """Build a :class:`RunSpec`, normalizing mapping-style overrides."""
    return RunSpec(
        config_name=config_name,
        workload_name=workload_name,
        scale=scale,
        seed=seed,
        arrivals=arrivals,
        workload_overrides=tuple(sorted((workload_overrides or {}).items())),
        config_overrides=tuple(sorted((config_overrides or {}).items())),
    )


def _build_arrivals(arrival_spec: Optional[Tuple]):
    # Delegates to the arrival registry; ConfigurationError (a
    # ReproError) propagates for unknown kinds.
    return arrival_from_spec(arrival_spec)


def _apply_config_override(config, path: str, value) -> None:
    parts = path.split(".")
    parent = config
    for name in parts[:-1]:
        parent = getattr(parent, name)
    if not hasattr(parent, parts[-1]):
        raise ReproError(f"config override {path!r}: no such field")
    try:
        setattr(parent, parts[-1], value)
    except dataclasses.FrozenInstanceError:
        owner = config
        for name in parts[:-2]:
            owner = getattr(owner, name)
        setattr(owner, parts[-2],
                dataclasses.replace(parent, **{parts[-1]: value}))


def _spec_parts(spec: RunSpec):
    """Resolve a spec into its (config, workload kwargs, scale) parts —
    shared by execution and snapshot-key computation."""
    scale = resolve_scale(spec.scale)
    config = build_config(spec.config_name, scale)
    for path, value in spec.config_overrides:
        _apply_config_override(config, path, value)
    kwargs = scale.workload_kwargs()
    kwargs.update(dict(spec.workload_overrides))
    return config, kwargs, scale


def _spec_warm_key(spec: RunSpec) -> Optional[str]:
    """The spec's warm-state snapshot key (None = no warm state)."""
    from repro import snapshot as snap

    config, kwargs, scale = _spec_parts(spec)
    return snap.warm_key(config, spec.workload_name, spec.seed, kwargs,
                         dataset_pages=scale.dataset_pages)


def _prepare_runner(spec: RunSpec, store,
                    backend: Optional[str] = None) -> Runner:
    """Build the :class:`Runner` for one spec, warm state included.

    With snapshots enabled the dataset build is memoized, and the
    warm/measure-boundary state is restored from the store when the
    spec's warm key is already captured — bit-identical to a fresh
    ``machine.warm_caches()`` — or captured for the rest of the sweep
    otherwise.  ``backend`` selects the execution backend for the
    measurement phase (warm state is backend-independent, as is the
    result — the vector backend is bit-identical or falls back).
    """
    from repro import snapshot as snap

    config, kwargs, scale = _spec_parts(spec)
    arrivals = _build_arrivals(spec.arrivals)
    key = None
    if store.enabled:
        key = snap.warm_key(config, spec.workload_name, spec.seed, kwargs,
                            dataset_pages=scale.dataset_pages)
        if key is not None:
            payload = store.load(snap.WARM_KIND, key)
            if payload is not None:
                runner = Runner(config, payload["workload"],
                                arrivals=arrivals, warm=False,
                                backend=backend)
                snap.restore_warm(runner, payload)
                return runner
    workload = snap.build_workload(spec.workload_name, scale.dataset_pages,
                                   spec.seed, store=store, **kwargs)
    runner = Runner(config, workload, arrivals=arrivals, backend=backend)
    if key is not None:
        snap.capture_warm(runner, key, store)
    return runner


def execute_spec(spec: RunSpec, snapshots: Optional[bool] = None,
                 snapshot_dir=None, backend: Optional[str] = None):
    """Run one spec to a ``SimulationResult`` (mirrors the serial path
    of ``run_simulation`` so results match bit-for-bit).

    ``snapshots``/``snapshot_dir`` select the warm-state snapshot
    policy (default: the ``REPRO_SNAPSHOT``/``REPRO_SNAPSHOT_DIR``
    environment); both the fresh-warm and snapshot-restore paths
    produce bit-identical results — the golden determinism test pins
    this.  ``backend`` picks the execution backend (``None`` keeps the
    Runner default, i.e. ``$REPRO_BACKEND`` or scalar); the cache key
    deliberately excludes it, because results are backend-invariant.
    """
    from repro import snapshot as snap

    store = snap.resolve_store(snapshots, snapshot_dir)
    return _prepare_runner(spec, store, backend=backend).run()


# ------------------------------------------------------------ result cache --


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 1 (serial) when unset."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _source_digest() -> str:
    """Digest of every ``repro`` source file: any simulator change
    invalidates cached results without manual version bumps.  (The
    digest itself lives in :mod:`repro.snapshot`, which shares it with
    the snapshot-file headers.)"""
    from repro.snapshot import source_digest
    return source_digest()


def _version_stamp() -> str:
    return f"{CACHE_VERSION}:{_source_digest()}"


def _ensure_cache_dir(cache_dir: Path) -> None:
    """Create the cache dir; wipe stale entries on a stamp mismatch."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    stamp_path = cache_dir / _STAMP_NAME
    stamp = _version_stamp()
    try:
        current = stamp_path.read_text()
    except OSError:
        current = None
    if current != stamp:
        for entry in cache_dir.glob("*.pkl"):
            try:
                entry.unlink()
            except OSError:
                pass
        stamp_path.write_text(stamp)


def spec_key(spec: RunSpec) -> str:
    """Content hash naming the cache entry for ``spec``."""
    scale = resolve_scale(spec.scale)
    canonical = (
        _version_stamp(),
        spec.config_name,
        spec.workload_name,
        tuple(sorted(dataclasses.asdict(scale).items(),
                     key=lambda item: item[0])),
        spec.seed,
        spec.arrivals,
        spec.workload_overrides,
        spec.config_overrides,
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()


def cache_load(spec: RunSpec, cache_dir: Path):
    path = cache_dir / f"{spec_key(spec)}.pkl"
    try:
        with open(path, "rb") as handle:
            result = pickle.load(handle)
    except OSError:
        return None
    except Exception:
        # Corrupt entry (interrupted writer, version skew): drop it.
        try:
            path.unlink()
        except OSError:
            pass
        return None
    # Touch on hit: file mtime order is the LRU order the byte-cap
    # pruner evicts in.
    try:
        os.utime(path)
    except OSError:
        pass
    return result


def cache_store(spec: RunSpec, result, cache_dir: Path) -> None:
    path = cache_dir / f"{spec_key(spec)}.pkl"
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return
    # Keep the cache tree (results + snapshots) under the byte cap.
    from repro.snapshot import prune_cache
    prune_cache(cache_dir, keep=(path,))


# ----------------------------------------------------------------- fan-out --


def _pool_context():
    """The multiprocessing context for worker pools.

    ``fork`` is requested explicitly (not left to the platform
    default): forked workers inherit the parent's in-process snapshot
    memo, so pre-warmed state reaches them with zero file I/O.  On
    platforms without ``fork`` (Windows; macOS where it is unreliable
    with threads) this falls back to the platform default (``spawn``),
    where workers restore warm state from the snapshot *files* instead
    — same results, one pickle read per group member.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _run_in_pool(func: Callable, items: Sequence,
                 jobs: int) -> Optional[List]:
    """Run ``func`` over ``items`` in a process pool.

    Returns a list aligned with ``items`` where each slot is either the
    result or the exception that run raised.  Returns ``None`` when no
    pool could be created at all (caller falls back in-process).
    """
    try:
        from concurrent.futures import ProcessPoolExecutor
        executor = ProcessPoolExecutor(max_workers=jobs,
                                       mp_context=_pool_context())
    except Exception:
        return None
    outcomes: List = [None] * len(items)
    try:
        with executor:
            futures = {
                executor.submit(func, item): index
                for index, item in enumerate(items)
            }
            for future, index in futures.items():
                try:
                    outcomes[index] = future.result()
                except BaseException as exc:  # includes BrokenProcessPool
                    outcomes[index] = exc
    except Exception:
        # The pool itself failed to start workers; fall back.
        return None
    return outcomes


def _log(message: str) -> None:
    if os.environ.get("REPRO_QUIET", "0") != "1":
        print(f"[repro.parallel] {message}", file=sys.stderr)


def _prewarm_groups(specs: Sequence[RunSpec], pending: Sequence[int],
                    store) -> None:
    """Warm each snapshot-key group once in the parent before fanning
    out, so workers restore instead of re-warming.

    Only groups of two or more pending specs whose key is not already
    captured are warmed here — singletons capture inside their own
    worker at no extra cost.  Forked workers inherit the resulting
    in-process memo; spawned workers read the snapshot files.
    """
    from repro import snapshot as snap

    groups: Dict[str, List[int]] = {}
    for index in pending:
        key = _spec_warm_key(specs[index])
        if key is not None:
            groups.setdefault(key, []).append(index)
    for key, members in groups.items():
        if len(members) < 2 or store.contains(snap.WARM_KIND, key):
            continue
        # Builds, warms, and captures; the runner itself is discarded.
        _prepare_runner(specs[members[0]], store)


def run_specs(specs: Sequence[RunSpec], jobs: Optional[int] = None,
              cache: Optional[bool] = None,
              cache_dir: Optional[Union[str, Path]] = None,
              report: Optional[Dict[str, int]] = None,
              snapshots: Optional[bool] = None,
              snapshot_dir: Optional[Union[str, Path]] = None,
              backend: Optional[str] = None) -> List:
    """Execute a batch of run specs, results in spec order.

    ``jobs`` defaults to ``REPRO_JOBS`` (1 = in-process).  Cached
    results are reused when ``cache`` is enabled (default, unless
    ``REPRO_CACHE=0``).  Warm-state snapshots (``snapshots`` /
    ``snapshot_dir``, default per ``REPRO_SNAPSHOT`` /
    ``REPRO_SNAPSHOT_DIR``) group pending specs by warm key and warm
    each group once in the parent before the pool fans out.  Each spec
    that crashes its worker is retried once in-process; a second
    failure raises :class:`ParallelRunError`.  ``report``, if given,
    is filled with batch statistics (``cache_hits`` / ``executed`` /
    ``retried`` / ``jobs``).

    ``backend`` defaults to the sweep-level preference
    (:func:`repro.sim.vector.preferred_backend`): vector unless
    ``$REPRO_BACKEND`` overrides — safe because the vector backend is
    bit-identical on the shapes it accepts and falls back per run on
    the rest, so this only changes wall time, never results (nor cache
    keys, which exclude the backend for the same reason).
    """
    from repro import snapshot as snap
    from repro.sim import vector as _vector

    specs = list(specs)
    backend = _vector.preferred_backend(backend)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    use_cache = cache_enabled() if cache is None else cache
    directory = Path(cache_dir) if cache_dir is not None \
        else default_cache_dir()
    store = snap.resolve_store(snapshots, snapshot_dir)

    results: List = [None] * len(specs)
    pending: List[int] = []
    hits = 0
    if use_cache:
        _ensure_cache_dir(directory)
        for index, spec in enumerate(specs):
            cached = cache_load(spec, directory)
            if cached is not None:
                results[index] = cached
                hits += 1
            else:
                pending.append(index)
    else:
        pending = list(range(len(specs)))

    retried = 0
    if pending:
        outcomes: Optional[List] = None
        if jobs > 1 and len(pending) > 1:
            if store.enabled:
                _prewarm_groups(specs, pending, store)
            worker = functools.partial(execute_spec,
                                       snapshots=store.enabled,
                                       snapshot_dir=store.directory,
                                       backend=backend)
            outcomes = _run_in_pool(
                worker, [specs[i] for i in pending],
                min(jobs, len(pending)),
            )
        if outcomes is None:
            # In-process path: jobs == 1, a single spec, or no usable
            # process pool on this platform.  The snapshot memo already
            # gives in-process group sharing, no pre-warm pass needed.
            outcomes = []
            for index in pending:
                try:
                    outcomes.append(
                        execute_spec(specs[index], snapshots=store.enabled,
                                     snapshot_dir=store.directory,
                                     backend=backend))
                except Exception as exc:
                    outcomes.append(exc)
        for slot, index in enumerate(pending):
            outcome = outcomes[slot]
            if isinstance(outcome, BaseException):
                # One retry, in-process: a crashed worker poisons every
                # future on its pool, so the retry both re-runs genuine
                # failures and rescues innocent casualties.
                retried += 1
                try:
                    outcome = execute_spec(specs[index],
                                           snapshots=store.enabled,
                                           snapshot_dir=store.directory,
                                           backend=backend)
                except Exception as exc:
                    raise ParallelRunError(specs[index], exc) from exc
            results[index] = outcome
            if use_cache:
                cache_store(specs[index], results[index], directory)

    if report is not None:
        report.update(cache_hits=hits, executed=len(pending),
                      retried=retried, jobs=jobs)
    if hits or jobs > 1:
        _log(f"{len(specs)} runs: {hits} cache hits, "
             f"{len(pending)} executed (jobs={jobs})")
    return results


def run_spec(spec: RunSpec, **kwargs):
    """Convenience wrapper: one spec, one result."""
    return run_specs([spec], **kwargs)[0]


def map_tasks(func: Callable, kwargs_list: Sequence[Mapping[str, Any]],
              jobs: Optional[int] = None) -> List:
    """Generic uncached fan-out: ``[func(**kw) for kw in kwargs_list]``
    across worker processes, in order, with the same in-process
    fallback and single-retry policy as :func:`run_specs`.

    ``func`` must be a module-level (picklable) callable.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    items = [(func, dict(kwargs)) for kwargs in kwargs_list]
    outcomes: Optional[List] = None
    if jobs > 1 and len(items) > 1:
        outcomes = _run_in_pool(_call_task, items, min(jobs, len(items)))
    if outcomes is None:
        outcomes = []
        for item in items:
            try:
                outcomes.append(_call_task(item))
            except Exception as exc:
                outcomes.append(exc)
    results: List = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, BaseException):
            try:
                outcome = _call_task(items[index])
            except Exception as exc:
                raise ReproError(
                    f"task {func.__name__}(**{items[index][1]!r}) failed: "
                    f"{exc!r}"
                ) from exc
        results.append(outcome)
    return results


def _call_task(item: Tuple[Callable, Dict[str, Any]]):
    func, kwargs = item
    return func(**kwargs)
