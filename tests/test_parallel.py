"""Tests for the process-parallel harness and its result cache."""

import dataclasses

import pytest

from repro.harness import parallel
from repro.harness.common import HarnessScale
from repro.harness.parallel import (
    ParallelRunError,
    RunSpec,
    execute_spec,
    make_spec,
    map_tasks,
    poisson,
    run_specs,
    spec_key,
)

# Small enough that one run takes a fraction of a second.
TINY = HarnessScale(
    name="tiny", dataset_pages=2048, num_cores=1, warmup_us=100.0,
    measurement_us=600.0, zipf_s=1.8, workloads=("arrayswap",),
)


def tiny_spec(config_name="astriflash", **kwargs) -> RunSpec:
    kwargs.setdefault("seed", 7)
    return RunSpec(config_name, "arrayswap", TINY, **kwargs)


def result_fields(result) -> dict:
    fields = dataclasses.asdict(result)
    # Kernel events/sec and the wall-clock split are wall-clock-derived
    # and vary run to run (warm_source additionally depends on whether
    # a snapshot happened to exist); every simulated statistic must
    # still match bit-for-bit.
    for name in ("events_per_second", "warm_wall_seconds", "wall_seconds",
                 "warm_source"):
        fields.pop(name, None)
    return fields


class TestSpecs:
    def test_spec_key_is_stable_and_content_addressed(self):
        assert spec_key(tiny_spec()) == spec_key(tiny_spec())
        assert spec_key(tiny_spec()) != spec_key(tiny_spec(seed=8))
        assert spec_key(tiny_spec()) != spec_key(
            tiny_spec(arrivals=poisson(1000.0, seed=8))
        )
        assert spec_key(tiny_spec()) != spec_key(
            tiny_spec(config_overrides=(("scale.dram_fraction", 0.05),))
        )

    def test_make_spec_normalizes_mappings(self):
        spec = make_spec("astriflash", "arrayswap", TINY,
                         workload_overrides={"zipf_s": 1.9},
                         config_overrides={"scale.dram_fraction": 0.05})
        assert spec.workload_overrides == (("zipf_s", 1.9),)
        assert spec.config_overrides == (("scale.dram_fraction", 0.05),)

    def test_config_override_applies_dotted_paths(self):
        spec = tiny_spec(config_overrides=(
            ("ult.threads_per_core", 4),
            ("ult.pending_queue_limit", 4),
        ))
        result = execute_spec(spec)
        assert result.completed_jobs > 0

    def test_unknown_override_path_raises(self):
        from repro.config import make_config
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            parallel._apply_config_override(
                make_config("astriflash"), "scale.nope", 1
            )

    def test_unknown_arrival_spec_raises(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            parallel._build_arrivals(("uniform", 1.0))


class TestDeterminism:
    def test_parallel_results_bit_identical_to_serial(self):
        specs = [tiny_spec("astriflash"), tiny_spec("flash-sync")]
        serial = run_specs(specs, jobs=1, cache=False)
        fanned = run_specs(specs, jobs=2, cache=False)
        for a, b in zip(serial, fanned):
            assert result_fields(a) == result_fields(b)

    def test_run_twice_identical(self):
        spec = tiny_spec()
        first = run_specs([spec], jobs=1, cache=False)[0]
        second = run_specs([spec], jobs=1, cache=False)[0]
        assert result_fields(first) == result_fields(second)


class TestCache:
    def test_hit_after_store(self, tmp_path):
        spec = tiny_spec()
        report = {}
        first = run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path,
                          report=report)[0]
        assert report == {"cache_hits": 0, "executed": 1, "retried": 0,
                          "jobs": 1}
        second = run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path,
                           report=report)[0]
        assert report["cache_hits"] == 1 and report["executed"] == 0
        assert result_fields(first) == result_fields(second)

    def test_version_stamp_invalidates(self, tmp_path):
        spec = tiny_spec()
        run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path)
        # Simulate a stale cache from an older simulator version.
        (tmp_path / parallel._STAMP_NAME).write_text("0:deadbeef")
        report = {}
        run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path,
                  report=report)
        assert report["cache_hits"] == 0 and report["executed"] == 1
        assert (tmp_path / parallel._STAMP_NAME).read_text() \
            == parallel._version_stamp()

    def test_corrupt_entry_is_dropped(self, tmp_path):
        spec = tiny_spec()
        run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path)
        entry = tmp_path / f"{spec_key(spec)}.pkl"
        entry.write_bytes(b"not a pickle")
        report = {}
        result = run_specs([spec], jobs=1, cache=True, cache_dir=tmp_path,
                           report=report)[0]
        assert report["executed"] == 1
        assert result.completed_jobs > 0

    def test_cache_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        report = {}
        run_specs([tiny_spec()], jobs=1, cache_dir=tmp_path, report=report)
        assert report["cache_hits"] == 0
        assert not list(tmp_path.glob("*.pkl"))


class TestFailurePaths:
    def test_bad_spec_raises_structured_error(self):
        spec = RunSpec("astriflash", "no-such-workload", TINY)
        with pytest.raises(ParallelRunError) as excinfo:
            run_specs([spec], jobs=1, cache=False)
        assert excinfo.value.spec is spec

    def test_flaky_spec_retried_once(self, monkeypatch):
        spec = tiny_spec()
        real = parallel.execute_spec
        calls = {"n": 0}

        def flaky(s, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulated worker crash")
            return real(s, **kwargs)

        monkeypatch.setattr(parallel, "execute_spec", flaky)
        report = {}
        result = run_specs([spec], jobs=1, cache=False, report=report)[0]
        assert report["retried"] == 1
        assert result.completed_jobs > 0

    def test_pool_unavailable_falls_back_in_process(self, monkeypatch):
        monkeypatch.setattr(parallel, "_run_in_pool",
                            lambda *args, **kwargs: None)
        results = run_specs([tiny_spec(), tiny_spec(seed=8)], jobs=4,
                            cache=False)
        assert all(r.completed_jobs > 0 for r in results)


def _square(value):
    return value * value


class TestMapTasks:
    def test_in_process(self):
        assert map_tasks(_square, [{"value": v} for v in (1, 2, 3)],
                         jobs=1) == [1, 4, 9]

    def test_fanned_out(self):
        assert map_tasks(_square, [{"value": v} for v in (1, 2, 3, 4)],
                         jobs=2) == [1, 4, 9, 16]

    def test_failure_is_structured(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            map_tasks(_square, [{"value": "x"}], jobs=1)


class TestExperimentWiring:
    """jobs= plumbs through every experiment entry point."""

    def test_run_experiment_accepts_jobs(self):
        from repro.harness import run_experiment
        result = run_experiment("fig2", jobs=2)
        assert result.rows

    def test_report_generate_accepts_jobs(self, tmp_path):
        from repro.harness import EXPERIMENTS
        from repro.harness.report import generate
        cheap = {name: EXPERIMENTS[name] for name in ("table1", "fig3")}
        out = tmp_path / "report.txt"
        results = generate(cheap, scale="quick", jobs=2, out=str(out))
        assert len(results) == 2
        assert "Table I" in out.read_text()
