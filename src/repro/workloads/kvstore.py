"""KV-store SET/GET workload for the write path (DESIGN.md §4j).

A memcached/Flashield-style key-value service over the existing zipf
machinery: every operation hashes its key to a bucket in a packed
index, then touches the key's value page — a read for GET, a write for
SET.  ``write_ratio`` sets the SET fraction, so the same workload
serves the read-mostly and write-heavy presets the admission-policy
sweep compares.

Value placement is hash-spread (Fibonacci hashing over the value
heap): hot keys land on unrelated pages instead of packing the head of
the dataset, which is what makes the dirty-page stream wide enough to
exercise writeback, GC, and admission filtering.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.workloads.base import Step, Workload
from repro.workloads.zipf import ZipfianGenerator

#: Bucket head pointers are 8 bytes: 512 buckets per 4 KiB page.
BUCKETS_PER_PAGE = 512
#: Small values (512 B) pack eight to a page.
VALUES_PER_PAGE = 8


class KvStoreWorkload(Workload):
    """Zipfian SET/GET mix with a configurable write ratio."""

    name = "kvstore"
    rob_occupancy = 48.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.3,
                 ops_per_job: int = 16, compute_ns: float = 120.0,
                 write_ratio: float = 0.5) -> None:
        super().__init__(dataset_pages, seed)
        if not 0.0 <= write_ratio <= 1.0:
            raise WorkloadError("write_ratio must be in [0, 1]")
        if num_keys is None:
            num_keys = min(1 << 16, max(1024, dataset_pages * 4))
        self.num_keys = num_keys
        self.zipf_s = zipf_s
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self.write_ratio = write_ratio

        index_pages = -(-num_keys // BUCKETS_PER_PAGE)  # ceil
        if index_pages >= dataset_pages:
            raise WorkloadError("dataset too small for the KV index")
        self._index_pages = index_pages
        self._value_pages = dataset_pages - index_pages
        self._value_slots = self._value_pages * VALUES_PER_PAGE
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                      permute=False)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        # _compute is inlined (same draw, same bits — see
        # Workload._compute); per-op locals bound once per job.
        step_cls = Step
        sample = self._zipf.sample
        rng_random = self._rng_random
        compute_ns = self.compute_ns
        write_ratio = self.write_ratio
        index_pages = self._index_pages
        value_slots = self._value_slots
        for _ in range(self.ops_per_job):
            key = sample()
            is_set = rng_random() < write_ratio
            # Bucket probe: always a read of the packed index.
            bucket_page = (key * 2654435761) % self.num_keys \
                // BUCKETS_PER_PAGE
            yield step_cls(compute_ns * (0.5 + rng_random()), bucket_page)
            # Value access: hash-spread over the value heap.
            slot = (key * 2654435761) % value_slots
            value_page = index_pages + slot // VALUES_PER_PAGE
            yield step_cls(compute_ns * (0.5 + rng_random()), value_page,
                           is_write=is_set)
