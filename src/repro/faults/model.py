"""NAND read-error math: RBER -> codeword -> page failure probability.

A 4 KiB flash page is protected as ``codewords_per_page`` independent
ECC codewords of ``codeword_bits`` raw bits, each correcting up to
``ecc_correctable_bits`` errors.  With raw bit errors i.i.d. at rate
``rber``, the error count per codeword is Binomial(n, p) with n in the
thousands and p small, so the Poisson approximation with
``lambda = n * p`` is accurate and cheap — the classic waterfall shape:
essentially zero failures until ``lambda`` approaches the correction
strength ``t``, then a sharp rise to 1.

Read-retry reduces the effective RBER (shifted-Vref re-reads recover
cells near the threshold), modelled as a geometric per-round scale, so
retries turn most first-sense failures into corrected reads — at the
cost of extra sense latency the device model charges.
"""

from __future__ import annotations

import math
from typing import Optional


class ReadOutcome:
    """What the fault plan decided for one flash page read."""

    __slots__ = ("sense_multiplier", "retry_rounds", "uncorrectable",
                 "timeout_stall")

    def __init__(self, sense_multiplier: float = 1.0, retry_rounds: int = 0,
                 uncorrectable: bool = False,
                 timeout_stall: bool = False) -> None:
        self.sense_multiplier = sense_multiplier
        self.retry_rounds = retry_rounds
        self.uncorrectable = uncorrectable
        self.timeout_stall = timeout_stall

    @property
    def faulted(self) -> bool:
        return (self.retry_rounds > 0 or self.uncorrectable
                or self.timeout_stall or self.sense_multiplier != 1.0)

    def __repr__(self) -> str:
        return (f"<ReadOutcome retries={self.retry_rounds} "
                f"uncorrectable={self.uncorrectable} "
                f"timeout={self.timeout_stall} "
                f"sense_x={self.sense_multiplier:g}>")


def poisson_tail(threshold: int, lam: float) -> float:
    """``P(X > threshold)`` for ``X ~ Poisson(lam)``.

    Exact partial-sum evaluation; for ``lam`` large enough that
    ``exp(-lam)`` underflows (lam > ~700) the mass is far above any
    realistic ECC threshold, so the tail is 1 for threshold < lam.
    """
    if lam <= 0.0:
        return 0.0
    if lam > 700.0:
        # exp(-lam) underflows; the distribution is concentrated at
        # lam +- a few sqrt(lam), far from thresholds this model uses.
        return 1.0 if threshold < lam else 0.0
    term = math.exp(-lam)
    cdf = term
    for k in range(1, threshold + 1):
        term *= lam / k
        cdf += term
    return max(0.0, 1.0 - cdf)


def codeword_failure_probability(rber: float, codeword_bits: int,
                                 correctable_bits: int) -> float:
    """Probability one codeword has more raw errors than ECC corrects."""
    if rber <= 0.0:
        return 0.0
    return poisson_tail(correctable_bits, rber * codeword_bits)


def page_failure_probability(rber: float, codewords_per_page: int,
                             codeword_bits: int,
                             correctable_bits: int) -> float:
    """Probability at least one of the page's codewords fails ECC."""
    p_cw = codeword_failure_probability(rber, codeword_bits,
                                        correctable_bits)
    if p_cw <= 0.0:
        return 0.0
    if p_cw >= 1.0:
        return 1.0
    return 1.0 - (1.0 - p_cw) ** codewords_per_page


def effective_rber(rber: float, erase_count: int,
                   wear_rber_factor: float,
                   retry_round: int = 0,
                   retry_rber_scale: float = 1.0) -> float:
    """RBER after wear coupling and ``retry_round`` shifted-Vref senses."""
    rate = rber * (1.0 + wear_rber_factor * erase_count)
    if retry_round > 0:
        rate *= retry_rber_scale ** retry_round
    return rate


def describe_outcome(outcome: Optional[ReadOutcome]) -> str:
    """Human-readable one-liner for logs and traces."""
    if outcome is None:
        return "clean"
    if outcome.uncorrectable:
        return f"uncorrectable after {outcome.retry_rounds} retries"
    if outcome.timeout_stall:
        return "transient timeout stall"
    if outcome.retry_rounds:
        return f"corrected after {outcome.retry_rounds} retries"
    if outcome.sense_multiplier != 1.0:
        return f"slow plane x{outcome.sense_multiplier:g}"
    return "clean"
