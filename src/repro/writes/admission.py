"""DRAM→flash admission policies (DESIGN.md §4j).

The backside controller consults an :class:`AdmissionPolicy` before
persisting a dirty way it is about to evict:

- ``write-back`` admits every dirty eviction (the classic cache).
- ``write-through`` issues a flash program on *every* store instead,
  so dirty evictions are already persistent and the writeback is
  elided.
- ``readiness`` is the Flashield-style filter (PAPERS.md): a page
  earns flash admission only after it has been read at least K times
  within a sliding window, tracked by a small seeded count-min sketch.
  Cold dirty pages are dropped on eviction — in the modelled
  flash-as-memory setting the backing dataset is the source of truth
  and a rejected page simply refaults from its stale copy, which is
  exactly the re-read-probability trade Flashield quantifies.

Policies are deterministic: the sketch hashes with salts derived from
``WritesConfig.sketch_seed`` (its own stream, never the simulation
RNG), so two runs with the same config make identical decisions.
"""

from __future__ import annotations

import random
from typing import List

from repro.config.system import WritesConfig

_MASK64 = (1 << 64) - 1
# Fibonacci-hash multiplier (golden-ratio reciprocal in 64 bits).
_HASH_MULT = 0x9E3779B97F4A7C15


class ReadinessSketch:
    """Seeded count-min sketch over page read counts, with aging.

    ``rows`` hash rows of ``2**bits`` counters each; an estimate is the
    minimum over rows.  Every ``window`` observations all counters are
    halved, so popularity decays and "K reads within a window" means a
    recent window, not forever.
    """

    def __init__(self, rows: int, bits: int, window: int,
                 seed: int) -> None:
        self.rows = rows
        self.bits = bits
        self.window = window
        self._shift = 64 - bits
        self._size = 1 << bits
        salts = random.Random(seed)
        self._salts: List[int] = [
            salts.getrandbits(64) | 1 for _ in range(rows)
        ]
        self._counters: List[List[int]] = [
            [0] * self._size for _ in range(rows)
        ]
        self._observed = 0

    def _index(self, page: int, salt: int) -> int:
        return (((page ^ salt) * _HASH_MULT) & _MASK64) >> self._shift

    def observe(self, page: int) -> None:
        """Record one read of ``page``."""
        for row, salt in enumerate(self._salts):
            self._counters[row][self._index(page, salt)] += 1
        self._observed += 1
        if self._observed >= self.window:
            self._observed = 0
            for counters in self._counters:
                for index, value in enumerate(counters):
                    if value:
                        counters[index] = value >> 1

    def estimate(self, page: int) -> int:
        """Upper-bound estimate of recent reads of ``page``."""
        return min(
            self._counters[row][self._index(page, salt)]
            for row, salt in enumerate(self._salts)
        )


class AdmissionPolicy:
    """Base policy: what the BC asks before persisting an eviction."""

    kind = "base"
    #: True when every store is pushed straight to flash (the FC calls
    #: the BC's write-through hook), which also makes dirty evictions
    #: already-persistent.
    propagate_writes = False

    def observe_read(self, page: int) -> None:
        """A frontside read access touched ``page``."""

    def admit_writeback(self, page: int) -> bool:
        """Should the dirty eviction of ``page`` be written to flash?"""
        return True


class WriteBackAdmission(AdmissionPolicy):
    """Admit every dirty eviction (classic write-back cache)."""

    kind = "write-back"


class WriteThroughAdmission(AdmissionPolicy):
    """Program flash on every store; evictions carry no new data."""

    kind = "write-through"
    propagate_writes = True

    def admit_writeback(self, page: int) -> bool:
        return False


class ReadinessAdmission(AdmissionPolicy):
    """Flashield-style filter: admit only pages read >= K recently."""

    kind = "readiness"

    def __init__(self, config: WritesConfig) -> None:
        self.required_reads = config.readiness_reads
        self.sketch = ReadinessSketch(
            rows=config.sketch_rows,
            bits=config.sketch_bits,
            window=config.readiness_window,
            seed=config.sketch_seed,
        )

    def observe_read(self, page: int) -> None:
        self.sketch.observe(page)

    def admit_writeback(self, page: int) -> bool:
        return self.sketch.estimate(page) >= self.required_reads


def make_admission(config: WritesConfig) -> AdmissionPolicy:
    """Build the configured policy (config must be enabled and valid)."""
    if config.admission_policy == "write-through":
        return WriteThroughAdmission()
    if config.admission_policy == "readiness":
        return ReadinessAdmission(config)
    return WriteBackAdmission()
