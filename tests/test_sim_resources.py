"""Unit tests for Server and Store resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Ready, Server, Store, spawn


def _use(server, engine, duration, log, tag):
    grant = server.acquire()
    if grant is not None:
        yield grant
    log.append((tag, "start", engine.now))
    yield duration
    server.release()
    log.append((tag, "end", engine.now))


def test_server_serializes_beyond_capacity():
    engine = Engine()
    server = Server(engine, capacity=1)
    log = []
    spawn(engine, _use(server, engine, 10.0, log, "a"))
    spawn(engine, _use(server, engine, 10.0, log, "b"))
    engine.run()
    # b must wait for a to release.
    assert ("a", "end", 10.0) in log
    assert ("b", "start", 10.0) in log
    assert ("b", "end", 20.0) in log


def test_server_parallel_up_to_capacity():
    engine = Engine()
    server = Server(engine, capacity=2)
    log = []
    for tag in ("a", "b"):
        spawn(engine, _use(server, engine, 10.0, log, tag))
    engine.run()
    assert ("a", "end", 10.0) in log
    assert ("b", "end", 10.0) in log


def test_server_fifo_grant_order():
    engine = Engine()
    server = Server(engine, capacity=1)
    log = []
    for tag in ("a", "b", "c"):
        spawn(engine, _use(server, engine, 5.0, log, tag))
    engine.run()
    starts = [entry for entry in log if entry[1] == "start"]
    assert [s[0] for s in starts] == ["a", "b", "c"]


def test_release_idle_server_raises():
    engine = Engine()
    server = Server(engine, capacity=1)
    with pytest.raises(SimulationError):
        server.release()


def test_server_utilization():
    engine = Engine()
    server = Server(engine, capacity=1)
    log = []
    spawn(engine, _use(server, engine, 50.0, log, "a"))
    engine.run(until=100.0)
    assert server.utilization() == pytest.approx(0.5)


def test_invalid_capacities_raise():
    engine = Engine()
    with pytest.raises(SimulationError):
        Server(engine, capacity=0)
    with pytest.raises(SimulationError):
        Store(engine, capacity=0)


def test_store_put_get_fifo():
    engine = Engine()
    store = Store(engine)
    assert store.try_put("x")
    assert store.try_put("y")
    assert store.try_get() == (True, "x")
    assert store.try_get() == (True, "y")
    assert store.try_get() == (False, None)


def test_store_capacity_blocks_put():
    engine = Engine()
    store = Store(engine, capacity=1)
    assert store.try_put("a")
    assert not store.try_put("b")
    assert store.is_full


def test_store_blocking_get_wakes_on_put():
    engine = Engine()
    store = Store(engine)
    received = []

    def consumer():
        slot = store.get()
        if isinstance(slot, Ready):
            item = slot.item
        else:
            item = yield slot
        received.append((item, engine.now))

    def producer():
        yield 15.0
        store.try_put("hello")

    spawn(engine, consumer())
    spawn(engine, producer())
    engine.run()
    assert received == [("hello", 15.0)]


def test_store_blocking_put_wakes_on_get():
    engine = Engine()
    store = Store(engine, capacity=1)
    store.try_put("first")
    done = []

    def producer():
        signal = store.put("second")
        assert signal is not None
        yield signal
        done.append(engine.now)

    def consumer():
        yield 25.0
        ok, item = store.try_get()
        assert ok and item == "first"

    spawn(engine, producer())
    spawn(engine, consumer())
    engine.run()
    assert done == [25.0]
    assert store.try_get() == (True, "second")


def test_store_get_ready_when_item_present():
    engine = Engine()
    store = Store(engine)
    store.try_put(7)
    slot = store.get()
    assert isinstance(slot, Ready)
    assert slot.item == 7
