"""Hardware-managed DRAM cache: organization, timing, MSR, controllers."""

from repro.dramcache.cache import DramCache
from repro.dramcache.controllers import (
    AccessResult,
    BacksideController,
    FrontsideController,
    MissRequest,
)
from repro.dramcache.msr import MissStatusRow, MsrEntry
from repro.dramcache.organization import DramCacheOrganization, EvictedPage, Way
from repro.dramcache.timing import (
    DramCacheTiming,
    build_timing,
    flat_partition_access_ns,
)

__all__ = [
    "AccessResult",
    "BacksideController",
    "DramCache",
    "DramCacheOrganization",
    "DramCacheTiming",
    "EvictedPage",
    "FrontsideController",
    "MissRequest",
    "MissStatusRow",
    "MsrEntry",
    "Way",
    "build_timing",
    "flat_partition_access_ns",
]
