"""Focused tests of runner internals: forward progress, wake paths,
measurement accounting, and per-mode corner cases."""

import dataclasses

import pytest

from repro.config import make_config
from repro.core import Runner
from repro.core.runner import REPLAY_RACE_LIMIT
from repro.errors import SimulationError
from repro.units import US
from repro.workloads import PoissonArrivals, Step, Workload, make_workload


class OnePageWorkload(Workload):
    """Deterministic workload: every job touches the same few pages."""

    name = "one-page"
    rob_occupancy = 32.0

    def __init__(self, dataset_pages=1024, seed=0, pages=(0,),
                 steps_per_job=8, compute_ns=200.0, writes=False):
        super().__init__(dataset_pages, seed)
        self.pages = pages
        self.steps_per_job = steps_per_job
        self.compute_ns_value = compute_ns
        self.writes = writes

    def _steps_for_job(self, job_id):
        for index in range(self.steps_per_job):
            page = self.pages[index % len(self.pages)]
            yield Step(self.compute_ns_value, page, self.writes)


def small_config(name, cores=1, dataset=1024, **overrides):
    config = make_config(name)
    config.num_cores = cores
    config.scale.dataset_pages = dataset
    config.scale.warmup_ns = 100.0 * US
    config.scale.measurement_ns = 1_000.0 * US
    for key, value in overrides.items():
        setattr(config.scale, key, value)
    return config


class TestDramOnlyPath:
    def test_throughput_matches_hand_computation(self):
        # 8 steps x (200 ns compute + flat DRAM latency); no TLB misses.
        config = small_config("dram-only")
        config.tlb = dataclasses.replace(config.tlb, miss_probability=0.0)
        workload = OnePageWorkload()
        runner = Runner(config, workload)
        result = runner.run()
        flat = runner.machine.flat_dram_latency_ns
        expected_service = 8 * (200.0 + flat)
        measured = 1e9 / result.throughput_jobs_per_s
        assert measured == pytest.approx(expected_service, rel=0.02)

    def test_tlb_misses_add_walk_cost(self):
        workload_a = OnePageWorkload()
        config_a = small_config("dram-only")
        config_a.tlb = dataclasses.replace(config_a.tlb,
                                           miss_probability=0.0)
        base = Runner(config_a, workload_a).run()

        workload_b = OnePageWorkload()
        config_b = small_config("dram-only")
        config_b.tlb = dataclasses.replace(config_b.tlb,
                                           miss_probability=1.0)
        walked = Runner(config_b, workload_b).run()
        assert walked.throughput_jobs_per_s < base.throughput_jobs_per_s


class TestForwardProgress:
    def test_thrashing_set_forces_synchronous_completion(self):
        # A one-set cache with more concurrently-hot pages than ways:
        # rescheduled threads find their page evicted and must use the
        # forward-progress path.
        config = small_config("astriflash")
        config.dram_cache = dataclasses.replace(
            config.dram_cache, associativity=2
        )
        # Shrink cache to 2 pages via the scale fraction.
        config.scale.dram_fraction = 2.5 / 1024
        num_sets_pages = [0, 1, 2, 3, 4, 5]  # >2 hot pages, same cache
        workload = OnePageWorkload(pages=tuple(num_sets_pages),
                                   steps_per_job=12)
        runner = Runner(config, workload, warm=False)
        runner.run()
        assert runner.stats["forward_progress_syncs"] > 0

    def test_forward_progress_bit_cleared_after_retire(self):
        config = small_config("astriflash")
        workload = make_workload("arrayswap", 1024, seed=2, zipf_s=1.8)
        runner = Runner(config, workload)
        runner.run()
        # After the run no thread may be left with the bit set while
        # idle (all completed threads cleared it).
        for library in runner.machine.libraries:
            for thread in library._threads:
                if thread.job is None:
                    assert not thread.forward_progress


class TestOpenLoopWakeups:
    def test_idle_core_wakes_on_arrival(self):
        # Sparse arrivals leave the core idle between jobs; every job
        # must still complete (wake path works).
        config = small_config("astriflash")
        workload = OnePageWorkload()
        runner = Runner(config, workload,
                        arrivals=PoissonArrivals(100.0 * US, seed=4))
        result = runner.run()
        assert result.completed_jobs >= 5
        # Response latency at this load is near pure service time.
        assert result.response_p99_ns < 50.0 * US


class TestOsSwapDetails:
    def test_faults_route_through_pager(self):
        config = small_config("os-swap")
        workload = make_workload("arrayswap", 1024, seed=3, zipf_s=1.8)
        runner = Runner(config, workload)
        runner.run()
        assert runner.machine.pager.stats["faults"] > 0
        assert runner.machine.flash.stats["reads"] > 0

    def test_shootdowns_happen_on_evictions(self):
        config = small_config("os-swap")
        workload = make_workload("arrayswap", 1024, seed=3, zipf_s=1.8)
        runner = Runner(config, workload)
        runner.run()
        assert runner.machine.pager.stats["shootdowns"] > 0


class _FakeAccess:
    def __init__(self, hit, latency_ns=10.0, completion=None):
        self.hit = hit
        self.latency_ns = latency_ns
        self.completion = completion


class _FakeCache:
    """Scripted dram_cache stand-in for replay-race unit tests."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.accesses = 0

    def access(self, page, is_write):
        self.accesses += 1
        return self.outcomes.pop(0)


class TestReplayRace:
    """A synchronous waiter can find its page evicted again between the
    install signal and its wakeup; the replay must loop, not mispresent
    the miss as a hit (and leak the fresh completion signal)."""

    def make_runner(self, fake_cache):
        config = small_config("flash-sync")
        runner = Runner(config, OnePageWorkload())
        runner.machine.dram_cache = fake_cache
        return runner

    def test_immediate_hit_charges_hit_latency(self):
        runner = self.make_runner(_FakeCache([_FakeAccess(True, 42.0)]))
        gen = runner._replay_until_hit(3, False)
        with pytest.raises(StopIteration) as stop:
            next(gen)
        assert stop.value.value == 42.0
        assert runner.stats["replay_miss_races"] == 0

    def test_raced_replay_waits_for_fresh_refill(self):
        completion = object()  # the generator yields it untouched
        cache = _FakeCache([
            _FakeAccess(False, 5.0, completion),
            _FakeAccess(True, 42.0),
        ])
        runner = self.make_runner(cache)
        gen = runner._replay_until_hit(3, False)
        assert next(gen) is completion  # waits on the raced refill
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        assert stop.value.value == 42.0
        assert runner.stats["replay_miss_races"] == 1
        assert cache.accesses == 2

    def test_livelock_bounded(self):
        misses = [_FakeAccess(False, 5.0, object())
                  for _ in range(REPLAY_RACE_LIMIT + 2)]
        runner = self.make_runner(_FakeCache(misses))
        gen = runner._replay_until_hit(3, False)
        with pytest.raises(SimulationError):
            next(gen)  # first raced replay
            while True:
                gen.send(None)  # keep losing the race
        assert runner.stats["replay_miss_races"] == REPLAY_RACE_LIMIT + 1


class TestMeasurementWindowIsolation:
    def test_warmup_misses_do_not_pollute_miss_ratio(self):
        # One page, cold cache: the only miss happens during warmup, so
        # the measurement-window miss ratio must be exactly zero.
        config = small_config("flash-sync")
        workload = OnePageWorkload()
        runner = Runner(config, workload, warm=False)
        result = runner.run()
        assert runner._misses > 0  # the cold miss did happen ...
        assert result.miss_ratio == 0.0  # ... before the window opened

    def test_busy_fraction_uses_measurement_window_only(self):
        # A closed loop saturates the core: busy fraction of the
        # measurement window must be ~1, not diluted by warmup.
        config = small_config("dram-only")
        result = Runner(config, OnePageWorkload()).run()
        assert 0.9 < result.core_busy_fraction <= 1.0


class TestMeasurementAccounting:
    def test_completed_jobs_match_throughput(self):
        config = small_config("dram-only")
        workload = OnePageWorkload()
        result = Runner(config, workload).run()
        window_s = config.scale.measurement_ns / 1e9
        assert result.throughput_jobs_per_s == \
            pytest.approx(result.completed_jobs / window_s)

    def test_seed_reproducibility(self):
        def run_once():
            config = small_config("astriflash")
            workload = make_workload("arrayswap", 1024, seed=7, zipf_s=1.8)
            return Runner(config, workload, seed=7).run()

        first = run_once()
        second = run_once()
        assert first.completed_jobs == second.completed_jobs
        assert first.service_p99_ns == second.service_p99_ns
        assert first.miss_ratio == second.miss_ratio

    def test_disable_warmup(self):
        config = small_config("astriflash")
        workload = make_workload("arrayswap", 1024, seed=7, zipf_s=1.8)
        runner = Runner(config, workload, warm=False)
        assert runner.machine.dram_cache.organization.occupancy() == 0
        runner.run()


class TestTimeBreakdown:
    def test_astriflash_time_counters_populated(self):
        config = small_config("astriflash", cores=2, dataset=8192)
        workload = make_workload("arrayswap", 8192, seed=11, zipf_s=1.7)
        runner = Runner(config, workload)
        result = runner.run()
        counters = result.counters
        # Switch and flush time were charged.
        assert counters.get("time_switch_ns", 0) > 0
        assert counters.get("time_flush_ns", 0) > 0
        # Overheads are a small fraction of total core time here.
        window = 2 * (config.scale.warmup_ns + config.scale.measurement_ns)
        assert counters["time_switch_ns"] < 0.1 * window
        assert 0.0 < result.core_busy_fraction <= 1.0
