"""Tests for the metrics registry, run ledger, diff/regress tooling
and the static dashboard (repro.metrics)."""

import json
import math
from html.parser import HTMLParser

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.metrics import (
    DEFAULT_THRESHOLD,
    MetricSet,
    RunRecord,
    append_record,
    bench_view,
    classify_delta,
    diff_records,
    filter_records,
    format_key,
    make_record,
    metric_direction,
    parse_key,
    read_ledger,
    render_dashboard,
    run_regress,
    select_record,
)


# ------------------------------------------------------------- registry --


class TestRegistry:
    def test_format_and_parse_round_trip(self):
        key = format_key("flash/reads", {"preset": "astriflash",
                                         "workload": "tatp"})
        assert key == "flash/reads{preset=astriflash,workload=tatp}"
        name, labels = parse_key(key)
        assert name == "flash/reads"
        assert labels == {"preset": "astriflash", "workload": "tatp"}

    def test_format_key_sorts_labels(self):
        a = format_key("x/y", {"b": "2", "a": "1"})
        b = format_key("x/y", {"a": "1", "b": "2"})
        assert a == b == "x/y{a=1,b=2}"

    def test_metric_set_skips_none_and_nonfinite(self):
        metrics = MetricSet()
        metrics.add("a/b", None)
        metrics.add("a/c", float("nan"))
        metrics.add("a/d", float("inf"))
        metrics.add("a/e", 1.0)
        assert list(metrics.as_dict()) == ["a/e"]

    def test_metric_set_merge_and_filter(self):
        left = MetricSet()
        left.add("flash/reads", 5.0, preset="p")
        right = MetricSet()
        right.add("gc/moves", 2.0)
        left.merge(right)
        assert len(left) == 2
        assert list(left.filter("gc/").as_dict()) == ["gc/moves"]

    def test_result_metrics_exclude_wall_fields(self):
        from repro.config import make_config
        from repro.core import Runner
        from repro.units import US
        from repro.workloads import make_workload

        config = make_config("dram-only")
        config.num_cores = 1
        config.scale.dataset_pages = 2048
        config.scale.measurement_ns = 200 * US
        workload = make_workload("arrayswap", 2048, seed=3)
        result = Runner(config, workload).run()
        metrics = result.metrics(backend="scalar")
        keys = metrics.as_dict()
        assert any(key.startswith("runner/throughput_jobs_per_s")
                   for key in keys)
        assert any(key.startswith("engine/events_executed")
                   for key in keys)
        assert not any("wall_seconds" in key for key in keys)
        # Labels ride on every key.
        sample = next(iter(metrics))
        assert sample.label("preset") == "dram-only"
        assert sample.label("backend") == "scalar"


class TestBenchView:
    def test_rejects_foreign_payload(self):
        with pytest.raises(ReproError):
            bench_view({"hello": "world"})

    def test_kernel_view_policies(self):
        payload = {
            "ops_per_job": 48, "entries": [
                {"backend": "scalar", "events_executed": 100,
                 "events_per_second": 1e6, "wall_seconds": 0.1,
                 "state_fingerprint": "abc"},
            ],
            "bit_identical": True, "speedup": 4.0,
        }
        view = bench_view(payload)
        assert view.verb == "bench-kernel"
        assert view.metrics["kernel/bit_identical"] == 1.0
        assert view.policies["kernel/bit_identical"]["mode"] == "exact"
        assert view.policies["kernel/speedup"]["mode"] == "floor"
        assert view.policies[
            "kernel/events_executed{backend=scalar}"]["mode"] == "exact"
        assert view.policies[
            "kernel/wall_seconds{backend=scalar}"]["mode"] == "info"
        assert view.fingerprint == "abc"

    def test_kernel_view_shape_cells(self):
        payload = {
            "ops_per_job": 48, "entries": [],
            "bit_identical": True, "speedup": 4.0,
            "shapes": [
                {"shape": "open-loop", "bit_identical": True,
                 "speedup": 2.5,
                 "entries": [
                     {"backend": "vector", "events_executed": 77,
                      "events_per_second": 1e6, "wall_seconds": 0.1},
                 ]},
            ],
        }
        view = bench_view(payload)
        key = "kernel/bit_identical{shape=open-loop}"
        assert view.metrics[key] == 1.0
        assert view.policies[key]["mode"] == "exact"
        key = "kernel/speedup{shape=open-loop}"
        assert view.metrics[key] == 2.5
        assert view.policies[key]["mode"] == "floor"
        key = "kernel/events_executed{backend=vector,shape=open-loop}"
        assert view.metrics[key] == 77.0
        assert view.policies[key]["mode"] == "exact"


# --------------------------------------------------------------- ledger --


class TestLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record = make_record("simulate", preset="astriflash",
                             workload="tatp", seed=7,
                             metrics={"flash/reads": 5.0},
                             fingerprint="f00",
                             wall_seconds=1.5, events_per_second=2e5)
        append_record(record, path)
        loaded = read_ledger(path)
        assert len(loaded) == 1
        assert loaded[0].to_dict() == record.to_dict()

    def test_record_id_ignores_wall_fields(self):
        a = make_record("simulate", preset="p", metrics={"m": 1.0},
                        wall_seconds=1.0, events_per_second=100.0,
                        artifacts=["/tmp/a.json"])
        b = make_record("simulate", preset="p", metrics={"m": 1.0},
                        wall_seconds=9.0, events_per_second=999.0,
                        artifacts=["/other/b.json"])
        assert a.record_id == b.record_id
        c = make_record("simulate", preset="p", metrics={"m": 2.0})
        assert c.record_id != a.record_id

    def test_read_ledger_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        record = make_record("profile", metrics={"m": 1.0})
        append_record(record, path)
        with open(path, "a") as handle:
            handle.write("not json\n\n{\"no_verb\": 1}\n")
        append_record(record, path)
        assert len(read_ledger(path)) == 2

    def test_missing_ledger_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_disable_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        path = tmp_path / "ledger.jsonl"
        assert append_record(make_record("simulate"), path) is None
        assert not path.exists()

    def test_filter_records(self):
        records = [
            RunRecord(verb="simulate", preset="a"),
            RunRecord(verb="profile", preset="a"),
            RunRecord(verb="simulate", preset="b"),
        ]
        assert len(filter_records(records, verb="simulate")) == 2
        assert len(filter_records(records, preset="a")) == 2
        assert len(filter_records(records, verb="simulate", last=1)) == 1
        assert filter_records(records, verb="simulate",
                              last=1)[0].preset == "b"

    def test_select_record_forms(self, tmp_path):
        records = [RunRecord(verb="simulate", record_id="aaa111"),
                   RunRecord(verb="profile", record_id="bbb222")]
        assert select_record(records, "-1").verb == "profile"
        assert select_record(records, "aaa").verb == "simulate"
        with pytest.raises(ReproError):
            select_record(records, "5")
        with pytest.raises(ReproError):
            select_record(records, "zzz")

    def test_identical_seed_runs_identical_records(self, tmp_path,
                                                   monkeypatch, capsys):
        """Two identical-seed simulate runs append records whose
        normalized payloads (and so record_ids) are identical."""
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        argv = ["simulate", "--config", "dram-only", "--workload",
                "arrayswap", "--dataset-pages", "2048",
                "--measurement-us", "200", "--seed", "11"]
        assert main(list(argv)) == 0
        assert main(list(argv)) == 0
        capsys.readouterr()
        first, second = read_ledger(tmp_path / "ledger.jsonl")
        assert first.record_id == second.record_id
        assert first.normalized() == second.normalized()
        assert first.metrics == second.metrics
        assert first.fingerprint == second.fingerprint


# ----------------------------------------------------------------- diff --


class TestDiff:
    def test_direction_heuristics(self):
        assert metric_direction("runner/service_p99_ns") == "lower"
        assert metric_direction("runner/throughput_jobs_per_s") == "higher"
        assert metric_direction("flash/erase_count_mean") == "neutral"
        # Label block does not confuse the parser.
        assert metric_direction(
            "loadgen/p99_us{preset=astriflash}") == "lower"

    def test_relative_within_noise(self):
        delta = classify_delta("runner/service_p99_ns", 100.0, 104.0,
                               DEFAULT_THRESHOLD)
        assert delta.verdict == "within-noise"

    def test_relative_regression_lower_better(self):
        delta = classify_delta("runner/service_p99_ns", 100.0, 120.0,
                               DEFAULT_THRESHOLD)
        assert delta.verdict == "regression"

    def test_relative_improvement_lower_better(self):
        delta = classify_delta("runner/service_p99_ns", 100.0, 80.0,
                               DEFAULT_THRESHOLD)
        assert delta.verdict == "improvement"

    def test_relative_regression_higher_better(self):
        delta = classify_delta("kernel/events_per_second", 100.0, 80.0,
                               DEFAULT_THRESHOLD)
        assert delta.verdict == "regression"

    def test_neutral_direction_reports_changed(self):
        delta = classify_delta("flash/erase_count_mean", 100.0, 200.0,
                               DEFAULT_THRESHOLD)
        assert delta.verdict == "changed"

    def test_exact_policy(self):
        delta = classify_delta("kernel/bit_identical", 1.0, 0.0,
                               DEFAULT_THRESHOLD, {"mode": "exact"})
        assert delta.verdict == "regression"
        same = classify_delta("kernel/bit_identical", 1.0, 1.0,
                              DEFAULT_THRESHOLD, {"mode": "exact"})
        assert same.verdict == "within-noise"

    def test_floor_policy(self):
        worse = classify_delta("kernel/speedup", 3.0, 2.5,
                               DEFAULT_THRESHOLD, {"mode": "floor"})
        assert worse.verdict == "regression"
        better = classify_delta("kernel/speedup", 3.0, 6.0,
                                DEFAULT_THRESHOLD, {"mode": "floor"})
        assert better.verdict == "improvement"

    def test_info_policy_never_gates(self):
        delta = classify_delta("kernel/wall_seconds", 1.0, 99.0,
                               DEFAULT_THRESHOLD, {"mode": "info"})
        assert delta.verdict == "within-noise"

    def test_added_and_removed(self):
        added = classify_delta("a/b", None, 1.0, DEFAULT_THRESHOLD)
        removed = classify_delta("a/b", 1.0, None, DEFAULT_THRESHOLD)
        assert added.verdict == "added"
        assert removed.verdict == "removed"

    def test_diff_records_fingerprints(self):
        base = RunRecord(verb="simulate", fingerprint="aaa",
                         metrics={"m/x": 1.0})
        same = RunRecord(verb="simulate", fingerprint="aaa",
                         metrics={"m/x": 1.0})
        other = RunRecord(verb="simulate", fingerprint="bbb",
                          metrics={"m/x": 1.0})
        assert diff_records(base, same).fingerprint_match is True
        assert diff_records(base, other).fingerprint_match is False
        blank = RunRecord(verb="simulate", metrics={"m/x": 1.0})
        assert diff_records(base, blank).fingerprint_match is None


# -------------------------------------------------------------- regress --


KERNEL_PAYLOAD = {
    "workload": "arrayswap", "scale": "quick", "config_preset": "dram-only",
    "ops_per_job": 48, "repeat": 3, "bit_identical": True, "speedup": 3.0,
    "schema_version": 2,
    "entries": [
        {"backend": "scalar", "wall_seconds": None, "events_executed": 7636,
         "events_per_second": None, "state_fingerprint": "abc",
         "vector_stats": {}, "fallback_reasons": {}},
        {"backend": "vector", "wall_seconds": None, "events_executed": 7636,
         "events_per_second": None, "state_fingerprint": "abc",
         "vector_stats": {"batches": 10, "scalar_fallbacks": 0},
         "fallback_reasons": {}},
    ],
}


class TestRegress:
    def _write(self, path, payload):
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return str(path)

    def test_regress_pass(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", KERNEL_PAYLOAD)
        current = self._write(tmp_path / "cur.json", KERNEL_PAYLOAD)
        report = run_regress(baseline, current_path=current)
        assert report.passed
        assert not report.diff.regressions

    def test_regress_speedup_floor(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", KERNEL_PAYLOAD)
        worse = json.loads(json.dumps(KERNEL_PAYLOAD))
        worse["speedup"] = 2.0
        current = self._write(tmp_path / "cur.json", worse)
        report = run_regress(baseline, current_path=current)
        assert not report.passed
        keys = [d.key for d in report.diff.regressions]
        assert keys == ["kernel/speedup"]
        # Above the floor is an improvement, not a failure.
        better = json.loads(json.dumps(KERNEL_PAYLOAD))
        better["speedup"] = 9.0
        current = self._write(tmp_path / "cur2.json", better)
        assert run_regress(baseline, current_path=current).passed

    def test_regress_fingerprint_divergence(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", KERNEL_PAYLOAD)
        diverged = json.loads(json.dumps(KERNEL_PAYLOAD))
        for entry in diverged["entries"]:
            entry["state_fingerprint"] = "zzz"
        current = self._write(tmp_path / "cur.json", diverged)
        report = run_regress(baseline, current_path=current)
        assert not report.passed
        assert "fingerprint" in report.reason

    def test_regress_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError):
            run_regress(tmp_path / "absent.json")

    def test_cli_exit_codes(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", KERNEL_PAYLOAD)
        current = self._write(tmp_path / "cur.json", KERNEL_PAYLOAD)
        assert main(["regress", "--baseline", baseline,
                     "--current", current]) == 0
        perturbed = json.loads(json.dumps(KERNEL_PAYLOAD))
        perturbed["entries"][0]["events_executed"] += 1
        bad = self._write(tmp_path / "bad.json", perturbed)
        assert main(["regress", "--baseline", bad,
                     "--current", current]) == 1
        assert main(["regress", "--baseline", str(tmp_path / "no.json"),
                     "--current", current]) == 2
        out = capsys.readouterr().out
        assert "REGRESS PASS" in out and "REGRESS FAIL" in out

    def test_cli_regress_json_verdict(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "base.json", KERNEL_PAYLOAD)
        current = self._write(tmp_path / "cur.json", KERNEL_PAYLOAD)
        verdict = tmp_path / "verdict.json"
        assert main(["regress", "--baseline", baseline, "--current",
                     current, "--json", str(verdict)]) == 0
        capsys.readouterr()
        payload = json.loads(verdict.read_text())
        assert payload["passed"] is True
        assert payload["counts"]


# ------------------------------------------------------------ CLI verbs --


class TestHistoryAndDiffCli:
    def test_history_empty(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["history"]) == 0
        assert "no matching records" in capsys.readouterr().out

    def test_history_and_diff_round_trip(self, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        argv = ["simulate", "--config", "dram-only", "--workload",
                "arrayswap", "--dataset-pages", "2048",
                "--measurement-us", "200", "--seed", "5"]
        assert main(list(argv)) == 0
        assert main(list(argv)) == 0
        capsys.readouterr()
        assert main(["history", "--verb", "simulate", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert records[0]["verb"] == "simulate"
        # Identical-seed runs: zero regressions, fingerprints equal.
        assert main(["diff", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "fingerprints: EQUAL" in out
        assert "regression" not in out

    def test_diff_detects_regression(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        path = tmp_path / "ledger.jsonl"
        append_record(make_record(
            "simulate", metrics={"runner/service_p99_ns": 100.0}), path)
        append_record(make_record(
            "simulate", metrics={"runner/service_p99_ns": 200.0}), path)
        assert main(["diff", "0", "1"]) == 1
        assert "regression" in capsys.readouterr().out

    def test_diff_bad_selector_exits_2(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["diff", "0", "1"]) == 2


# ------------------------------------------------------------ dashboard --


class _WellFormed(HTMLParser):
    """Minimal well-formedness check: every tag that opens closes."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "path", "circle",
            "line", "rect", "polyline", "text", "title", "stop"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        assert self.stack and self.stack[-1] == tag, \
            f"mismatched </{tag}> (open: {self.stack[-5:]})"
        self.stack.pop()


def _check_html(path):
    text = path.read_text()
    parser = _WellFormed()
    parser.feed(text)
    assert not parser.stack, f"unclosed tags: {parser.stack}"
    return text


CHAOS_PAYLOAD = {
    "experiment": "fig9", "scale": "quick", "workload": "tatp",
    "fault_seed": 1, "rber_points": [0.0, 8e-3],
    "presets": ["astriflash"], "monotonic_p99": True, "schema_version": 1,
    "cells": [
        {"preset": "astriflash", "rber": 0.0, "failed": False,
         "throughput_jobs_per_s": 1000.0, "service_p99_ns": 50000.0,
         "service_mean_ns": 9000.0, "fault_counters": {}},
        {"preset": "astriflash", "rber": 8e-3, "failed": False,
         "throughput_jobs_per_s": 900.0, "service_p99_ns": 90000.0,
         "service_mean_ns": 12000.0,
         "fault_counters": {"flash.read_retries": 14.0}},
    ],
}

LOADGEN_PAYLOAD = {
    "experiment": "fig10", "scale": "quick", "workload": "tatp",
    "arrival": "poisson", "seed": 42, "slo_us": 500.0,
    "backlog_threshold": 0.05, "saturation_qps": 2000.0,
    "qps_points": [500.0, 1000.0], "presets": ["astriflash"],
    "rber": 0.0, "fault_seed": 1, "monotonic_p99": True,
    "schema_version": 1,
    "knees": [{"preset": "astriflash", "sustained_qps": 1000.0,
               "sustained_fraction_of_dram": 0.5, "status": "ok",
               "evaluations": []}],
    "cells": [
        {"preset": "astriflash", "offered_qps": 500.0,
         "achieved_qps": 500.0, "completed_jobs": 100,
         "unfinished_jobs": 0, "backlog_fraction": 0.0,
         "censored": False, "p99_us": 120.0, "observed_p99_us": 120.0,
         "p99_lower_bound_us": None, "service_p99_us": 90.0,
         "response_mean_us": 40.0, "meets_slo": True},
        {"preset": "astriflash", "offered_qps": 1000.0,
         "achieved_qps": 980.0, "completed_jobs": 200,
         "unfinished_jobs": 30, "backlog_fraction": 0.13,
         "censored": True, "p99_us": None, "observed_p99_us": 300.0,
         "p99_lower_bound_us": 450.0, "service_p99_us": 95.0,
         "response_mean_us": 80.0, "meets_slo": False},
    ],
}

SWEEP_PAYLOAD = {
    "experiment": "fig9", "scale": "quick",
    "wall_seconds_snapshots_off": 10.0,
    "wall_seconds_snapshots_cold": 11.0,
    "wall_seconds_snapshots_on": 4.0, "speedup": 2.5,
    "schema_version": 1, "config_preset": "quick",
}

PROFILE_PAYLOAD = {
    "experiment": "fig9", "scale": "quick", "wall_seconds": 2.0,
    "total_calls": 100000, "events_executed": 50000,
    "events_per_second": 25000.0, "schema_version": 3,
    "config_preset": "quick", "warm_wall_seconds": 0.0,
    "backend": "vector", "scalar_fallbacks": 2,
    "fallback_reasons": {"tracing active (per-event observation)": 2},
    "hotspots": [{"function": "repro/sim/engine.py:1(run)",
                  "calls": 1000, "total_s": 0.5, "cumulative_s": 1.5}],
}


class TestDashboard:
    def test_empty_ledger_renders(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        out = tmp_path / "report.html"
        assert main(["dashboard", "--out", str(out), "--bench"]) == 0
        capsys.readouterr()
        text = _check_html(out)
        assert "Run ledger" in text
        assert "ledger is empty" in text

    def test_renders_all_five_schemas(self, tmp_path, monkeypatch,
                                      capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        payloads = {
            "BENCH_kernel.json": KERNEL_PAYLOAD,
            "BENCH_chaos.json": CHAOS_PAYLOAD,
            "BENCH_loadgen.json": LOADGEN_PAYLOAD,
            "BENCH_sweep.json": SWEEP_PAYLOAD,
            "PROFILE_fig9.json": PROFILE_PAYLOAD,
        }
        paths = []
        for name, payload in payloads.items():
            path = tmp_path / name
            path.write_text(json.dumps(payload))
            paths.append(str(path))
        append_record(make_record("simulate", preset="astriflash",
                                  metrics={"runner/service_p99_ns": 5e4}))
        out = tmp_path / "report.html"
        assert main(["dashboard", "--out", str(out), "--bench"]
                    + paths) == 0
        capsys.readouterr()
        text = _check_html(out)
        for marker in ("Kernel bench", "Chaos degradation",
                       "Loadgen knee", "Sweep bench", "Profile hotspots",
                       "Run ledger", "<svg"):
            assert marker in text, marker
        # Self-contained: no external fetches.
        assert "http://" not in text and "https://" not in text
        assert "<script src" not in text

    def test_sparkline_and_chart_helpers(self):
        from repro.metrics.dashboard import svg_chart, svg_sparkline

        assert "<svg" in svg_sparkline([1.0, 2.0, 3.0])
        assert "no data" in svg_sparkline([])
        chart = svg_chart({"series": [(0.0, 1.0), (1.0, 2.0)]},
                          x_label="x", y_label="y")
        assert "<svg" in chart and "series" in chart

    def test_missing_out_dir_raises(self, tmp_path):
        with pytest.raises(ReproError):
            render_dashboard(tmp_path / "absent" / "report.html",
                             bench_paths=[])


# ----------------------------------------------- fallback observability --


class TestFallbackSurfacing:
    def test_vector_fallback_reasons_tracked(self):
        from repro.sim import vector

        before = vector.fallback_reasons()
        vector.record_fallback("test reason (unit)")
        after = vector.fallback_reasons()
        assert after.get("test reason (unit)", 0) \
            == before.get("test reason (unit)", 0) + 1

    def test_simulate_warns_on_silent_fallback(self, capsys):
        # Multi-core Flash-Sync (cores share the DRAM cache and flash
        # path) forces the scalar fallback under --backend vector;
        # multi-core DRAM-only now runs the merged vector loop.
        assert main([
            "simulate", "--config", "flash-sync", "--workload",
            "arrayswap", "--dataset-pages", "2048",
            "--measurement-us", "100", "--cores", "2",
            "--backend", "vector",
        ]) == 0
        err = capsys.readouterr().err
        assert "fell back to scalar" in err
        assert "multi-core flash-sync" in err

    def test_profile_report_carries_fallback_fields(self):
        from repro.perf import PROFILE_SCHEMA_VERSION, ProfileReport

        assert PROFILE_SCHEMA_VERSION == 3
        report = ProfileReport(
            experiment="fig9", scale="quick", wall_seconds=1.0,
            total_calls=10, events_executed=100,
            events_per_second=100.0, scalar_fallbacks=3,
            fallback_reasons={"tracing active": 3})
        assert "scalar fallbacks" in report.format_text()
        assert report.key_metrics()["profile/scalar_fallbacks"] == 3.0


# ------------------------------------------------------------ telemetry --


class TestTelemetryColumns:
    def test_new_columns_appended_after_stable_prefix(self):
        from repro.obs.telemetry import TELEMETRY_FIELDS

        stable = ("run", "time_us", "msr_occupancy", "runq_jobs",
                  "new_threads", "pending_threads", "dirty_ways",
                  "flash_inflight", "bc_queue_depth", "core_busy")
        assert TELEMETRY_FIELDS[:len(stable)] == stable
        for column in ("gc_blocked_fraction", "erase_count_max",
                       "erase_count_mean", "fault_stall_ns"):
            assert column in TELEMETRY_FIELDS

    def test_sampler_populates_flash_columns(self):
        from repro.config import make_config
        from repro.core import Runner
        from repro.obs.tracer import Tracer, disable, enable
        from repro.units import US
        from repro.workloads import make_workload

        config = make_config("astriflash")
        config.num_cores = 1
        config.scale.dataset_pages = 2048
        config.scale.measurement_ns = 400 * US
        workload = make_workload("arrayswap", 2048, seed=3)
        tracer = Tracer(telemetry_interval_ns=50 * US)
        enable(tracer)
        try:
            Runner(config, workload).run()
        finally:
            disable()
        assert tracer.telemetry_rows
        row = tracer.telemetry_rows[-1]
        for column in ("gc_blocked_fraction", "erase_count_max",
                       "erase_count_mean", "fault_stall_ns"):
            assert column in row
            assert math.isfinite(row[column])
