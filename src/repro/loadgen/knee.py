"""Sustained-throughput-under-SLO knee solver.

The TailBench-style headline metric the paper leans on: the maximum
offered load at which the p99 response latency still meets an SLO.
:func:`solve_knee` bisects offered QPS against an arbitrary
``measure`` callable (a simulation in :mod:`repro.loadgen.sweep`, a
synthetic curve in the tests); :func:`knee_from_curve` reads the knee
off an already-sampled grid without extra evaluations.

``measure(qps)`` returns the p99 in ns, or ``None`` when the point
cannot be certified (its measurement window was censored — see the
backlog contract on :class:`repro.core.runner.SimulationResult`);
``None`` is conservatively treated as an SLO violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Knee statuses: how the sustained QPS relates to the searched range.
BELOW_RANGE = "below_range"    # even the lowest load violates the SLO
ABOVE_RANGE = "above_range"    # even the highest load meets the SLO
BRACKETED = "bracketed"        # bisected between a good and a bad load
GRID = "grid"                  # read off sampled points, not refined


@dataclass
class KneeEvaluation:
    """One probed load point."""

    qps: float
    p99_ns: Optional[float]
    meets_slo: bool


@dataclass
class KneeSolution:
    """Where the knee sits relative to the searched [lo, hi] range."""

    sustained_qps: Optional[float]
    status: str
    lo_qps: float
    hi_qps: float
    evaluations: List[KneeEvaluation] = field(default_factory=list)


def solve_knee(measure: Callable[[float], Optional[float]],
               lo_qps: float, hi_qps: float, slo_ns: float,
               rel_tol: float = 0.02, max_evals: int = 12) -> KneeSolution:
    """Max QPS in ``[lo_qps, hi_qps]`` whose p99 meets ``slo_ns``.

    Assumes p99 is non-decreasing in offered load (queueing theory's
    gift); bisects until the bracket is within ``rel_tol`` of the
    upper end or ``max_evals`` measurements have been spent.  The
    returned ``sustained_qps`` is always a load that *measured* within
    the SLO (never an unverified midpoint).
    """
    if lo_qps <= 0 or hi_qps <= 0 or lo_qps > hi_qps:
        raise ConfigurationError(
            f"bad knee bracket [{lo_qps}, {hi_qps}]"
        )
    if slo_ns <= 0:
        raise ConfigurationError("SLO must be positive")
    evaluations: List[KneeEvaluation] = []

    def check(qps: float) -> bool:
        p99 = measure(qps)
        meets = p99 is not None and p99 <= slo_ns
        evaluations.append(KneeEvaluation(qps, p99, meets))
        return meets

    if not check(lo_qps):
        return KneeSolution(None, BELOW_RANGE, lo_qps, hi_qps, evaluations)
    if lo_qps == hi_qps or check(hi_qps):
        return KneeSolution(hi_qps, ABOVE_RANGE, lo_qps, hi_qps,
                            evaluations)
    good, bad = lo_qps, hi_qps
    while bad - good > rel_tol * bad and len(evaluations) < max_evals:
        mid = 0.5 * (good + bad)
        if check(mid):
            good = mid
        else:
            bad = mid
    return KneeSolution(good, BRACKETED, good, bad, evaluations)


def knee_from_curve(points: Sequence[Tuple[float, Optional[float]]],
                    slo_ns: float) -> Optional[float]:
    """Knee read off a sampled (qps, p99_ns) curve: the largest load
    below the first SLO violation (None when even the lowest sampled
    load violates)."""
    sustained = None
    for qps, p99 in sorted(points):
        if p99 is None or p99 > slo_ns:
            break
        sustained = qps
    return sustained
