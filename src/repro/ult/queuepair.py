"""Queue-pair notification between the backside controller and cores.

Sec. IV-D2: "it is possible to program the backside controller and
create a notification mechanism using queue pairs that can notify the
core upon page arrivals from flash, similar to modern storage response
arrivals.  The scheduler can then read the queue pairs and schedule the
corresponding thread."

`CompletionQueue` is the per-core receive side: the BC posts one entry
per page arrival (with a doorbell callback that can wake an idle core),
and the user-level scheduler drains the queue at its next scheduling
point to mark the matching threads ready.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import CapacityError, ConfigurationError
from repro.stats import CounterSet


class CompletionEntry:
    """One page-arrival notification."""

    __slots__ = ("page", "posted_at", "context")

    def __init__(self, page: int, posted_at: float, context=None) -> None:
        self.page = page
        self.posted_at = posted_at
        self.context = context  # opaque (the parked thread)

    def __repr__(self) -> str:
        return f"<CompletionEntry page={self.page} t={self.posted_at:.0f}>"


class CompletionQueue:
    """Bounded per-core completion queue with a doorbell."""

    def __init__(self, core_id: int, capacity: int = 256,
                 doorbell: Optional[Callable[[], None]] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("completion queue needs capacity >= 1")
        self.core_id = core_id
        self.capacity = capacity
        self._entries: Deque[CompletionEntry] = deque()
        self._doorbell = doorbell
        self.stats = CounterSet(f"cq{core_id}")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def set_doorbell(self, doorbell: Callable[[], None]) -> None:
        self._doorbell = doorbell

    def post(self, page: int, now: float, context=None) -> CompletionEntry:
        """BC-side: publish a page arrival and ring the doorbell.

        A full queue is a protocol violation — the BC sizes it for the
        maximum number of outstanding misses a core can have.
        """
        if self.is_full:
            raise CapacityError(
                f"completion queue of core {self.core_id} overflowed"
            )
        entry = CompletionEntry(page, now, context)
        self._entries.append(entry)
        self.stats.add("posted")
        if self._doorbell is not None:
            self._doorbell()
        return entry

    def drain(self) -> List[CompletionEntry]:
        """Scheduler-side: consume all pending notifications."""
        entries = list(self._entries)
        self._entries.clear()
        if entries:
            self.stats.add("drains")
            self.stats.add("drained_entries", len(entries))
        return entries

    def peek(self) -> Optional[CompletionEntry]:
        return self._entries[0] if self._entries else None
