"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) at the harness ``quick`` scale and asserts the paper's
qualitative shape, so ``pytest benchmarks/ --benchmark-only`` doubles
as the reproduction run.  Set ``REPRO_SCALE=full`` to regenerate the
EXPERIMENTS.md numbers (minutes instead of seconds), and
``REPRO_JOBS=N`` to fan independent simulations out over N worker
processes (see ``repro.harness.parallel``).
"""

import os

import pytest


@pytest.fixture(scope="session")
def harness_scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


@pytest.fixture(scope="session")
def harness_jobs() -> int:
    """Worker-process count the harness fans out with (REPRO_JOBS)."""
    from repro.harness.parallel import default_jobs

    return default_jobs()


@pytest.fixture(scope="session", autouse=True)
def _no_result_cache():
    """Benchmarks measure regeneration, so the result cache must not
    short-circuit the timed run.  Honor an explicit opt-in only."""
    if "REPRO_CACHE" not in os.environ:
        os.environ["REPRO_CACHE"] = "0"
        yield
        del os.environ["REPRO_CACHE"]
    else:
        yield


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
