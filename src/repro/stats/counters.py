"""Named counters and rate/ratio helpers used by every component."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReproError


class Counter:
    """A bound increment handle for one named counter.

    Hot paths pay a dict lookup plus string hash for every
    ``CounterSet.add`` call; components that bump the same counter per
    simulated event bind a handle once (``stats.counter("hits")``) and
    increment through it.  The handle shares the underlying value cell
    with the owning :class:`CounterSet`, so reads through either view
    always agree.

    The cell is created on the *first increment*, not when the handle
    is bound — a counter that never fires must stay absent from
    ``as_dict()``, exactly as with plain ``add``.
    """

    __slots__ = ("key", "_cells", "_cell")

    def __init__(self, key: str, cells: Dict[str, List[float]]) -> None:
        self.key = key
        self._cells = cells
        self._cell: Optional[List[float]] = cells.get(key)

    def _bind(self) -> List[float]:
        cell = self._cells.get(self.key)
        if cell is None:
            cell = self._cells[self.key] = [0.0]
        self._cell = cell
        return cell

    def incr(self) -> None:
        """Add 1 (the per-event fast path: no checks, no hashing)."""
        cell = self._cell
        if cell is None:
            cell = self._bind()
        cell[0] += 1.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.key!r} decremented by {amount}")
        cell = self._cell
        if cell is None:
            cell = self._bind()
        cell[0] += amount

    @property
    def value(self) -> float:
        cell = self._cell if self._cell is not None \
            else self._cells.get(self.key)
        return cell[0] if cell is not None else 0.0

    def __repr__(self) -> str:
        return f"<Counter {self.key}={self.value:g}>"


class CounterSet:
    """A bag of named monotonically-increasing counters.

    Components expose a ``stats`` attribute of this type; the harness
    collects them into report rows.  Values live in shared one-element
    list cells so :class:`Counter` handles stay coherent with the set.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cells: Dict[str, List[float]] = {}

    def counter(self, key: str) -> Counter:
        """A bound-increment handle for ``key``.

        The key appears in :meth:`as_dict` only once incremented.
        """
        return Counter(key, self._cells)

    def add(self, key: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {key!r} decremented by {amount}")
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = [0.0]
        cell[0] += amount

    def get(self, key: str) -> float:
        cell = self._cells.get(key)
        return cell[0] if cell is not None else 0.0

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` counters; 0 when denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def as_dict(self) -> Dict[str, float]:
        return {key: cell[0] for key, cell in self._cells.items()}

    def as_metrics(self, namespace: str = "") -> Dict[str, float]:
        """Counters under registry-style ``subsystem/name`` keys
        (repro.metrics).  Dotted keys split on the first dot; bare keys
        fall under ``namespace`` (default: the set's own name)."""
        prefix = namespace or self.name or "counters"
        metrics: Dict[str, float] = {}
        for key, cell in self._cells.items():
            subsystem, _, stat = key.partition(".")
            if not stat:
                subsystem, stat = prefix, key
            metrics[f"{subsystem}/{stat}"] = cell[0]
        return metrics

    def merge(self, other: "CounterSet") -> None:
        for key, cell in other._cells.items():
            self.add(key, cell[0])

    def restore(self, values: Dict[str, float]) -> None:
        """Overwrite the counters with a snapshot's ``as_dict()`` dump.

        Existing cells are updated in place (bound :class:`Counter`
        handles stay coherent); missing keys are created; extras are
        dropped.  Intended for *freshly constructed* objects only —
        once a handle has cached a cell, dropping its key would orphan
        it, so snapshot restore always targets new component instances
        whose handles have not fired yet.
        """
        for key in list(self._cells):
            if key not in values:
                del self._cells[key]
        for key, value in values.items():
            cell = self._cells.get(key)
            if cell is None:
                self._cells[key] = [value]
            else:
                cell[0] = value

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}={v[0]:g}" for k, v in sorted(self._cells.items())
        )
        return f"<CounterSet {self.name} {inner}>"
