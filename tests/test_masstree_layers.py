"""Tests for the layered (trie-of-B+-trees) Masstree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.masstree_layers import (
    SLICE_BYTES,
    LayeredMasstree,
    key_slices,
)
from repro.workloads.pagedheap import SpreadHeap


def make_tree():
    return LayeredMasstree(SpreadHeap(0, 4096, 512))


class TestKeySlices:
    def test_short_key_is_one_slice(self):
        assert len(key_slices(b"abc")) == 1

    def test_long_key_splits(self):
        assert len(key_slices(b"x" * 20)) == 3

    def test_length_tagging_distinguishes_padded_keys(self):
        assert key_slices(b"ab") != key_slices(b"ab\0")

    def test_ordering_within_slice(self):
        assert key_slices(b"aa")[0] < key_slices(b"ab")[0]

    def test_empty_key_rejected(self):
        with pytest.raises(WorkloadError):
            key_slices(b"")

    def test_non_bytes_rejected(self):
        with pytest.raises(WorkloadError):
            key_slices("string")


class TestLayeredMasstree:
    def test_short_keys_single_layer(self):
        tree = make_tree()
        tree.insert(b"alpha", 100)
        tree.insert(b"beta", 200)
        assert tree.get(b"alpha")[0] == 100
        assert tree.get(b"beta")[0] == 200
        assert tree.get(b"gamma")[0] is None
        assert tree.depth() == 1

    def test_long_keys_descend_layers(self):
        tree = make_tree()
        key = b"0123456789abcdef_tail"
        tree.insert(key, 7)
        assert tree.get(key)[0] == 7
        assert tree.depth() >= 2

    def test_shared_prefix_same_sublayer(self):
        tree = make_tree()
        tree.insert(b"ABCDEFGHxxx", 1)
        tree.insert(b"ABCDEFGHyyy", 2)
        assert tree.get(b"ABCDEFGHxxx")[0] == 1
        assert tree.get(b"ABCDEFGHyyy")[0] == 2
        assert tree.size == 2

    def test_prefix_key_and_extension_coexist(self):
        # "ABCDEFGH" terminates exactly at an 8-byte boundary while a
        # longer key extends it: the terminal-sentinel path.
        tree = make_tree()
        tree.insert(b"ABCDEFGH", 10)
        tree.insert(b"ABCDEFGH-more", 20)
        assert tree.get(b"ABCDEFGH")[0] == 10
        assert tree.get(b"ABCDEFGH-more")[0] == 20

    def test_extension_inserted_before_prefix(self):
        tree = make_tree()
        tree.insert(b"ABCDEFGH-more", 20)
        tree.insert(b"ABCDEFGH", 10)
        assert tree.get(b"ABCDEFGH")[0] == 10
        assert tree.get(b"ABCDEFGH-more")[0] == 20

    def test_update_in_place(self):
        tree = make_tree()
        tree.insert(b"key", 1)
        tree.insert(b"key", 2)
        assert tree.get(b"key")[0] == 2
        assert tree.size == 1

    def test_page_paths_cover_all_layers(self):
        tree = make_tree()
        long_key = b"Z" * 24
        tree.insert(long_key, 5)
        value, pages = tree.get(long_key)
        assert value == 5
        # At least one index page per layer traversed.
        assert len(pages) >= 3

    def test_missing_long_key(self):
        tree = make_tree()
        tree.insert(b"AAAABBBBCCCC", 1)
        assert tree.get(b"AAAABBBBXXXX")[0] is None
        assert tree.get(b"AAAABBBB")[0] is None  # prefix not inserted

    @given(st.lists(st.binary(min_size=1, max_size=24), min_size=1,
                    max_size=60, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_random_byte_keys_roundtrip(self, keys):
        tree = LayeredMasstree(SpreadHeap(0, 1 << 16, 1024))
        for index, key in enumerate(keys):
            tree.insert(key, 1000 + index)
        tree.check_invariants()
        for index, key in enumerate(keys):
            value, pages = tree.get(key)
            assert value == 1000 + index, key
            assert pages
        assert tree.size == len(keys)
