"""Benchmarks: sensitivity sweeps beyond the paper's figures."""

from conftest import run_once

from repro.harness.sensitivity import dram_fraction_sweep, thread_count_sweep


def test_sensitivity_dram_fraction(benchmark, harness_scale):
    result = run_once(benchmark, dram_fraction_sweep, harness_scale)
    print("\n" + result.format_table())

    fractions = result.column("dram_fraction")
    ratios = dict(zip(fractions, result.column("throughput_vs_dram_only")))
    misses = dict(zip(fractions, result.column("miss_ratio")))
    # Throughput improves (weakly) with more DRAM, and miss ratio falls.
    assert ratios[0.10] >= ratios[0.01]
    assert misses[0.01] > misses[0.10]
    # The 3% design point already captures most of the benefit.
    assert ratios[0.03] > 0.85 * ratios[0.10]


def test_sensitivity_thread_count(benchmark, harness_scale):
    result = run_once(benchmark, thread_count_sweep, harness_scale)
    print("\n" + result.format_table())

    threads = result.column("threads_per_core")
    tput = dict(zip(threads, result.column("throughput_jobs_per_s")))
    # One thread degenerates toward synchronous flash waiting.
    assert tput[1] < 0.6 * tput[48]
    # Returns diminish once the pool covers the stall.
    assert tput[16] > 0.8 * tput[48]
    # More threads never hurt drastically.
    assert tput[48] >= 0.9 * max(tput.values())
