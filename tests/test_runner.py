"""Integration tests: full-system runs across all configurations.

These use a small scale (2 cores, 2k-page dataset, short windows) so
the whole file runs in seconds while still exercising every mode's
end-to-end path: DRAM-cache misses, flash refills, thread switches,
page faults, shootdowns, and measurement.
"""

import pytest

from repro.config import make_config
from repro.core import Runner
from repro.errors import ConfigurationError
from repro.units import US
from repro.workloads import PoissonArrivals, make_workload

DATASET = 8192


def quick_runner(config_name, workload_name="arrayswap", arrivals=None,
                 seed=11, **workload_kwargs):
    config = make_config(config_name)
    config.num_cores = 2
    config.scale.dataset_pages = DATASET
    config.scale.warmup_ns = 300.0 * US
    config.scale.measurement_ns = 2_500.0 * US
    # Zipf coverage shrinks with the item count, so the tiny test
    # dataset needs a higher skew to land at the paper's ~2% miss rate
    # (the full-scale default of 1.55 is calibrated in DESIGN.md).
    workload_kwargs.setdefault("zipf_s", 1.7)
    workload = make_workload(workload_name, DATASET, seed=seed,
                             **workload_kwargs)
    return Runner(config, workload, arrivals=arrivals)


@pytest.fixture(scope="module")
def closed_loop_results():
    results = {}
    for name in ("dram-only", "astriflash", "os-swap", "flash-sync"):
        results[name] = quick_runner(name).run()
    return results


class TestClosedLoop:
    def test_all_modes_complete_jobs(self, closed_loop_results):
        for name, result in closed_loop_results.items():
            assert result.completed_jobs > 10, name
            assert result.throughput_jobs_per_s > 0, name

    def test_throughput_ordering_matches_paper(self, closed_loop_results):
        """Fig. 9's ordering: Flash-Sync < OS-Swap < AstriFlash < DRAM."""
        tput = {name: r.throughput_jobs_per_s
                for name, r in closed_loop_results.items()}
        assert tput["flash-sync"] < tput["os-swap"]
        assert tput["os-swap"] < tput["astriflash"]
        assert tput["astriflash"] < tput["dram-only"]

    def test_astriflash_is_large_fraction_of_dram(self, closed_loop_results):
        ratio = (closed_loop_results["astriflash"].throughput_jobs_per_s
                 / closed_loop_results["dram-only"].throughput_jobs_per_s)
        assert ratio > 0.55  # tiny-scale runs are noisy; Fig. 9 bench
        # uses the full scale where this lands near the paper's 95%.

    def test_flash_sync_collapses(self, closed_loop_results):
        ratio = (closed_loop_results["flash-sync"].throughput_jobs_per_s
                 / closed_loop_results["dram-only"].throughput_jobs_per_s)
        assert ratio < 0.45

    def test_dram_only_never_misses(self, closed_loop_results):
        assert closed_loop_results["dram-only"].miss_ratio == 0.0

    def test_flash_modes_miss_at_calibrated_rate(self, closed_loop_results):
        for name in ("astriflash", "flash-sync"):
            result = closed_loop_results[name]
            assert 0.001 < result.miss_ratio < 0.12, name
            # Sec. II-A: a DRAM miss every few microseconds per core.
            assert 1.0 * US < result.mean_inter_miss_ns < 100.0 * US, name

    def test_service_latency_includes_miss_waits(self, closed_loop_results):
        dram = closed_loop_results["dram-only"]
        sync = closed_loop_results["flash-sync"]
        # Flash-Sync jobs serialize ~50 us stalls into service time.
        assert sync.service_p50_ns > dram.service_p50_ns

    def test_counters_exported(self, closed_loop_results):
        counters = closed_loop_results["astriflash"].counters
        assert any(key.startswith("dramcache.") for key in counters)
        assert any(key.startswith("flash.") for key in counters)


class TestOpenLoop:
    def test_poisson_run_reports_response_latency(self):
        runner = quick_runner("astriflash",
                              arrivals=PoissonArrivals(40.0 * US, seed=5))
        result = runner.run()
        assert result.response_p99_ns is not None
        assert result.response_p99_ns >= result.service_p99_ns * 0.5

    def test_low_load_has_low_queueing(self):
        light = quick_runner(
            "dram-only", arrivals=PoissonArrivals(200.0 * US, seed=5)
        ).run()
        heavy = quick_runner(
            "dram-only", arrivals=PoissonArrivals(12.0 * US, seed=5)
        ).run()
        assert light.response_p99_ns < heavy.response_p99_ns


class TestAblationConfigs:
    def test_nops_hurts_tail_latency(self):
        base = quick_runner("astriflash", seed=21).run()
        nops = quick_runner("astriflash-nops", seed=21).run()
        # FIFO starves pending jobs: service p99 inflates (Table II).
        assert nops.service_p99_ns > base.service_p99_ns

    def test_nodp_pays_for_flash_walks(self):
        runner = quick_runner("astriflash-nodp", seed=22)
        result = runner.run()
        assert runner.stats["tlb_misses"] > 0
        # The counter path for flash-served walks exists (it may be
        # zero on tiny runs when PT pages all fit in cache).
        assert runner.stats["pt_walk_flash_misses"] >= 0

    def test_ideal_at_least_as_fast_as_base(self):
        base = quick_runner("astriflash", seed=23).run()
        ideal = quick_runner("astriflash-ideal", seed=23).run()
        assert ideal.throughput_jobs_per_s > 0.7 * base.throughput_jobs_per_s


class TestAllWorkloadsRun:
    @pytest.mark.parametrize("workload_name", [
        "arrayswap", "rbtree", "hashtable", "tatp", "tpcc", "silo",
        "masstree",
    ])
    def test_astriflash_runs_every_workload(self, workload_name):
        result = quick_runner("astriflash", workload_name).run()
        assert result.completed_jobs > 0
        assert result.service_p99_ns > 0


class TestResultReporting:
    def test_describe_is_readable(self, closed_loop_results):
        text = closed_loop_results["astriflash"].describe()
        assert "astriflash" in text
        assert "jobs/s" in text

    def test_empty_window_raises(self):
        runner = quick_runner("dram-only")
        runner.config.scale.measurement_ns = 1.0  # nothing can finish
        with pytest.raises(ConfigurationError):
            runner.run()
