"""Property-based tests: DRAM-cache organization and FTL invariants
under random operation sequences."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dramcache import DramCacheOrganization
from repro.errors import CapacityError, ProtocolError
from repro.flash.ftl import PageMappingFtl


class TestOrganizationProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_populate_never_duplicates_or_overflows(self, pages):
        org = DramCacheOrganization(num_pages=16, associativity=4)
        for page in pages:
            org.populate(page)
            assert org.occupancy() <= org.capacity_pages
        # No page may be resident in two ways at once.
        resident = [
            way.page
            for ways in org._sets for way in ways if way.valid
        ]
        counts = Counter(resident)
        assert all(count == 1 for count in counts.values())

    @given(st.lists(st.tuples(st.integers(0, 31), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_miss_then_refill_makes_page_resident(self, accesses):
        org = DramCacheOrganization(num_pages=8, associativity=2)
        for page, is_write in accesses:
            hit = org.lookup(page, is_write)
            if not hit and not org.is_reserved(page):
                org.reserve_victim(page)
                org.install(page, dirty=is_write)
            assert org.contains(page) or org.is_reserved(page)
        # Stats are consistent.
        total = org.stats["hits"] + org.stats["misses"]
        assert total == len(accesses)

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=50,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_reservations_bounded_by_ways(self, pages):
        org = DramCacheOrganization(num_pages=4, associativity=4)
        reserved = 0
        for page in pages:
            try:
                org.reserve_victim(page)
                reserved += 1
            except ProtocolError:
                break
        assert reserved <= 4


class TestFtlProperties:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=400),
           st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_write_streams_preserve_mapping(self, writes, planes):
        ftl = PageMappingFtl(num_logical_pages=16, num_planes=planes,
                             pages_per_block=4, overprovisioning=0.9)
        written = set()
        for page in writes:
            # Run GC to exhaustion before the write if under pressure.
            plane = ftl.plane_of(page)
            while ftl.gc_pressure(plane):
                if ftl.collect(plane) == (0, 0):
                    break
            try:
                ftl.write(page)
            except CapacityError:
                break
            written.add(page)
        # Every written page maps to exactly one valid physical slot.
        valid_pages = []
        for plane in ftl.planes:
            for block in plane.blocks:
                for logical in block.valid:
                    if logical is not None:
                        valid_pages.append(logical)
        counts = Counter(valid_pages)
        assert set(counts) == written
        assert all(count == 1 for count in counts.values())

    @given(st.integers(2, 8), st.integers(20, 120))
    @settings(max_examples=30, deadline=None)
    def test_gc_conserves_valid_data(self, hot_pages, num_writes):
        ftl = PageMappingFtl(num_logical_pages=16, num_planes=1,
                             pages_per_block=4, overprovisioning=0.9)
        for index in range(num_writes):
            page = index % hot_pages
            while ftl.gc_pressure(0):
                if ftl.collect(0) == (0, 0):
                    break
            ftl.write(page)
        plane = ftl.planes[0]
        valid = sum(block.valid_count for block in plane.blocks)
        assert valid == min(hot_pages, num_writes)


class TestTagIndexCoherence:
    """The per-set ``page -> Way`` dicts are an index over the way
    lists, not the source of truth; any operation sequence must leave
    the two views identical (the organization-module invariants)."""

    @given(st.lists(
        st.tuples(
            st.sampled_from(("lookup", "write", "reserve", "install",
                             "cancel", "populate")),
            st.integers(0, 63),
        ),
        min_size=1, max_size=250,
    ))
    @settings(max_examples=60, deadline=None)
    def test_dict_views_match_way_lists(self, operations):
        org = DramCacheOrganization(num_pages=32, associativity=4)
        for op, page in operations:
            if op == "lookup":
                org.lookup(page)
            elif op == "write":
                org.lookup(page, is_write=True)
            elif op == "reserve":
                if not org.is_reserved(page) and not org.contains(page):
                    try:
                        org.reserve_victim(page)
                    except ProtocolError:
                        pass  # every way of the set reserved
            elif op == "install":
                if org.is_reserved(page):
                    org.install(page)
            elif op == "cancel":
                if org.is_reserved(page):
                    org.cancel_reservation(page)
            elif op == "populate":
                if not org.is_reserved(page):
                    try:
                        org.populate(page)
                    except ProtocolError:
                        pass  # every way of the set reserved

            for set_index, ways in enumerate(org._sets):
                valid_view = {
                    way.page: way for way in ways if way.page is not None
                }
                reserved_view = {
                    way.reserved_for: way
                    for way in ways if way.reserved_for is not None
                }
                assert org._tag_index[set_index] == valid_view
                assert org._reserved_index[set_index] == reserved_view
                # A reserved way never simultaneously holds a page.
                assert all(way.page is None
                           for way in reserved_view.values())
