"""Request arrival processes.

* :class:`PoissonArrivals` — open-loop bursty arrivals for tail-latency
  studies (Fig. 10 sweeps the mean inter-arrival time from 0 to 10 us);
* :class:`ClosedLoop` — a saturating job source for maximum-throughput
  measurements (Fig. 9 models "a large job queue").
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class PoissonArrivals:
    """Exponential inter-arrival times with a given mean."""

    def __init__(self, mean_interarrival_ns: float, seed: int = 42) -> None:
        if mean_interarrival_ns <= 0:
            raise ConfigurationError("mean inter-arrival must be positive")
        self.mean_interarrival_ns = mean_interarrival_ns
        self._rng = random.Random(seed)

    def next_gap_ns(self) -> float:
        """Time until the next request arrives."""
        return self._rng.expovariate(1.0 / self.mean_interarrival_ns)

    @property
    def rate_per_second(self) -> float:
        return 1e9 / self.mean_interarrival_ns


class ClosedLoop:
    """Always-backlogged source: a new job is available immediately."""

    def next_gap_ns(self) -> float:
        return 0.0

    @property
    def rate_per_second(self) -> float:
        return float("inf")
