"""Tests for repro.loadgen: knee solver, censoring, sweeps, JSON."""

import json
import math

import pytest

from repro.config import make_config
from repro.core import Runner
from repro.errors import ConfigurationError, ReproError
from repro.harness.common import HarnessScale
from repro.jsonutil import dumps, json_safe
from repro.loadgen import (
    ABOVE_RANGE,
    BELOW_RANGE,
    BRACKETED,
    DEFAULT_QPS_SWEEP,
    knee_from_curve,
    parse_qps_sweep,
    run_loadgen,
    solve_knee,
)
from repro.units import US
from repro.workloads import ClosedLoop, PoissonArrivals, make_workload

# Small enough that one open-loop run takes a fraction of a second.
TINY = HarnessScale(
    name="tiny", dataset_pages=2048, num_cores=1, warmup_us=100.0,
    measurement_us=600.0, zipf_s=1.8, workloads=("arrayswap",),
)


# ------------------------------------------------------------ knee solver --


def synthetic_p99(qps):
    """Monotone queueing-flavored curve: explodes approaching 1000."""
    return 50_000.0 / max(1e-9, 1.0 - qps / 1000.0)


class TestSolveKnee:
    def test_bracketed_on_monotone_curve(self):
        slo = synthetic_p99(600.0)  # knee sits exactly at 600 qps
        solution = solve_knee(synthetic_p99, 100.0, 990.0, slo)
        assert solution.status == BRACKETED
        assert solution.sustained_qps == pytest.approx(600.0, rel=0.03)
        # The answer is always a measured-good load, never a guess.
        measured = {e.qps: e.meets_slo for e in solution.evaluations}
        assert measured[solution.sustained_qps] is True

    def test_below_range(self):
        solution = solve_knee(synthetic_p99, 900.0, 990.0,
                              slo_ns=synthetic_p99(100.0))
        assert solution.status == BELOW_RANGE
        assert solution.sustained_qps is None

    def test_above_range(self):
        solution = solve_knee(synthetic_p99, 100.0, 500.0,
                              slo_ns=synthetic_p99(900.0))
        assert solution.status == ABOVE_RANGE
        assert solution.sustained_qps == 500.0

    def test_censored_measurement_counts_as_violation(self):
        def censored_above_400(qps):
            return None if qps > 400.0 else synthetic_p99(qps)
        solution = solve_knee(censored_above_400, 100.0, 990.0,
                              slo_ns=synthetic_p99(800.0))
        assert solution.status == BRACKETED
        assert solution.sustained_qps <= 400.0 * 1.03

    def test_respects_max_evals(self):
        solution = solve_knee(synthetic_p99, 100.0, 990.0,
                              slo_ns=synthetic_p99(600.0),
                              rel_tol=1e-9, max_evals=6)
        assert len(solution.evaluations) == 6

    def test_rejects_bad_bracket(self):
        with pytest.raises(ConfigurationError):
            solve_knee(synthetic_p99, 500.0, 100.0, slo_ns=1.0)
        with pytest.raises(ConfigurationError):
            solve_knee(synthetic_p99, 100.0, 500.0, slo_ns=0.0)


class TestKneeFromCurve:
    def test_reads_last_good_point(self):
        points = [(100.0, 10.0), (200.0, 20.0), (300.0, 90.0)]
        assert knee_from_curve(points, slo_ns=50.0) == 200.0

    def test_none_when_even_lowest_violates(self):
        assert knee_from_curve([(100.0, 99.0)], slo_ns=50.0) is None

    def test_censored_point_stops_the_scan(self):
        points = [(100.0, 10.0), (200.0, None), (300.0, 20.0)]
        assert knee_from_curve(points, slo_ns=50.0) == 100.0


# -------------------------------------------------------------- qps grids --


class TestParseQpsSweep:
    def test_absolute(self):
        sweep = parse_qps_sweep("100:500:3")
        assert sweep.resolve(12345.0) == (100.0, 300.0, 500.0)

    def test_relative_resolves_against_saturation(self):
        sweep = parse_qps_sweep("0.5x:1.0x:2")
        assert sweep.lo_relative and sweep.hi_relative
        assert sweep.resolve(2000.0) == (1000.0, 2000.0)

    def test_default_sweep_parses(self):
        sweep = parse_qps_sweep(DEFAULT_QPS_SWEEP)
        assert sweep.points == 5
        assert sweep.resolve(1000.0)[0] == pytest.approx(300.0)

    def test_single_point(self):
        assert parse_qps_sweep("0.8x:0.8x:1").resolve(1000.0) == (800.0,)

    @pytest.mark.parametrize("text", [
        "100:500", "a:b:3", "100:500:0", "-5:500:3", "500:100:3",
        "0.5x:0.9x:999", "3x:4x:2",
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ReproError):
            parse_qps_sweep(text)


# ---------------------------------------------------------------- jsonutil --


class TestJsonUtil:
    def test_non_finite_floats_become_null(self):
        payload = {
            "rate": float("inf"),
            "neg": float("-inf"),
            "nan": float("nan"),
            "nested": [1.5, {"x": float("inf")}],
            "ok": 3.0,
        }
        round_tripped = json.loads(dumps(payload))
        assert round_tripped["rate"] is None
        assert round_tripped["neg"] is None
        assert round_tripped["nan"] is None
        assert round_tripped["nested"][1]["x"] is None
        assert round_tripped["ok"] == 3.0

    def test_closed_loop_rate_serializes_as_null(self):
        # The in-memory API keeps the honest math.inf; only the JSON
        # boundary rewrites it (json.dumps would emit Infinity, which
        # json.loads accepts but strict parsers reject).
        rate = ClosedLoop().rate_per_second
        assert math.isinf(rate)
        assert json.loads(dumps({"rate": rate}))["rate"] is None
        assert "Infinity" not in dumps({"rate": rate})

    def test_json_safe_preserves_structure(self):
        assert json_safe((1, 2.0, "x")) == [1, 2.0, "x"]
        assert json_safe({"a": True, "b": None}) == {"a": True, "b": None}


# ------------------------------------------------- censoring in the runner --


def overloaded_result():
    config = make_config("dram-only")
    config.num_cores = 1
    config.scale.dataset_pages = 2048
    config.scale.warmup_ns = 100.0 * US
    config.scale.measurement_ns = 600.0 * US
    workload = make_workload("arrayswap", 2048, seed=7, zipf_s=1.8)
    # Offer far more load than one core can serve: the window must end
    # with a backlog.
    arrivals = PoissonArrivals(100.0, seed=8)
    return Runner(config, workload, arrivals=arrivals).run()


class TestOpenLoopCensoring:
    @pytest.fixture(scope="class")
    def result(self):
        return overloaded_result()

    def test_backlog_is_reported(self, result):
        assert result.unfinished_jobs > 0
        assert result.unfinished_jobs == \
            result.queued_jobs + result.inflight_jobs
        offered = result.unfinished_jobs + result.completed_jobs
        assert result.backlog_fraction == \
            pytest.approx(result.unfinished_jobs / offered)
        assert result.backlog_fraction > 0.05

    def test_lower_bound_dominates_observed_p99(self, result):
        # Merging censored ages can only push the tail estimate up.
        assert result.response_p99_lower_bound_ns is not None
        assert result.response_p99_lower_bound_ns >= result.response_p99_ns

    def test_closed_loop_reports_no_backlog_fields(self):
        config = make_config("dram-only")
        config.num_cores = 1
        config.scale.dataset_pages = 2048
        config.scale.warmup_ns = 100.0 * US
        config.scale.measurement_ns = 600.0 * US
        workload = make_workload("arrayswap", 2048, seed=7, zipf_s=1.8)
        result = Runner(config, workload).run()
        assert result.response_p99_lower_bound_ns is None
        # A closed loop keeps every core busy: the in-flight jobs at
        # window end are the per-core currently-running ones.
        assert result.queued_jobs == 0


# ------------------------------------------------------------- end to end --


class TestRunLoadgen:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("loadgen_cache")
        return run_loadgen(
            "fig10", scale=TINY, qps_sweep="0.4x:0.9x:2",
            workload="arrayswap", presets=("dram-only", "astriflash"),
            refine_evals=1, cache_dir=str(cache_dir),
        )

    def test_grid_shape(self, bench):
        assert bench.presets == ["dram-only", "astriflash"]
        assert len(bench.qps_points) == 2
        assert len(bench.cells) == 4
        for preset in bench.presets:
            curve = bench.curve(preset)
            assert [cell.offered_qps for cell in curve] == \
                bench.qps_points

    def test_schema_stamp_and_normalization(self, bench):
        assert bench.schema_version == 2
        assert bench.saturation_qps > 0
        assert bench.slo_us > 0
        for knee in bench.knees:
            if knee.sustained_qps is not None:
                assert knee.sustained_fraction_of_dram == \
                    pytest.approx(knee.sustained_qps / bench.saturation_qps)

    def test_censored_cells_withhold_p99(self, bench):
        for cell in bench.cells:
            if cell.censored:
                assert cell.p99_us is None
                assert cell.meets_slo is False
            else:
                assert cell.backlog_fraction <= bench.backlog_threshold

    def test_json_round_trips_strictly(self, bench):
        document = json.loads(bench.to_json())
        assert document["schema_version"] == 2
        assert "Infinity" not in bench.to_json()
        assert "NaN" not in bench.to_json()

    def test_rerun_is_bit_identical(self, bench, tmp_path):
        rerun = run_loadgen(
            "fig10", scale=TINY, qps_sweep="0.4x:0.9x:2",
            workload="arrayswap", presets=("dram-only", "astriflash"),
            refine_evals=1, cache_dir=str(tmp_path),
        )
        assert rerun.to_json() == bench.to_json()

    def test_execution_block_accounts_every_cell(self, bench):
        execution = bench.execution
        assert execution["backend"] in ("scalar", "vector")
        total_runs = len(bench.cells) + sum(
            max(0, len(knee.evaluations) - len(bench.curve(knee.preset)))
            for knee in bench.knees) + 1  # + the saturation probe
        assert execution["vector_cells"] + execution["scalar_cells"] \
            == total_runs
        if execution["backend"] == "vector":
            # TINY is one core: the dram-only open-loop cells ride the
            # merged arrival horizon; astriflash multiplexes threads
            # per burst and legitimately stays scalar.
            assert execution["vector_kinds"].get("open-loop", 0) > 0
            assert any("multiplexes" in reason for reason
                       in execution["fallback_reasons"])

    def test_backends_agree_byte_for_byte(self, bench, tmp_path):
        scalar = run_loadgen(
            "fig10", scale=TINY, qps_sweep="0.4x:0.9x:2",
            workload="arrayswap", presets=("dram-only", "astriflash"),
            refine_evals=1, cache_dir=str(tmp_path / "s"),
            backend="scalar",
        )
        other = json.loads(bench.to_json())
        mine = json.loads(scalar.to_json())
        assert mine.pop("execution")["backend"] == "scalar"
        other.pop("execution")
        # Everything simulation-derived must match byte for byte; only
        # the execution-accounting block may name a different backend.
        assert dumps(mine) == dumps(other)

    def test_unknown_arrival_kind_raises(self):
        with pytest.raises(ReproError):
            run_loadgen("fig10", scale=TINY, arrival="sawtooth")
