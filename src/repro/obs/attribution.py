"""Tail-latency attribution: where p99 requests spend their time.

Groups the tracer's completed request records by run, buckets them by
service-latency percentile, and reports the mean component composition
of each bucket — the measured analogue of the paper's Table 2 latency
breakdown, but per percentile band instead of a single mean, so the
*composition shift* between a typical request and a tail request is
visible (e.g. p99 requests dominated by MSR wait + flash queueing
rather than compute).  Components with no charged time anywhere are
omitted from the report, so the ``fault_stall`` column (failed flash
attempts under :mod:`repro.faults` injection — retry storms, BC
timeouts, reissues) only appears in chaos runs and never widens a
clean run's table.

The per-request component sums are exact by construction (the runner
charges every nanosecond of the service window to exactly one
component); ``worst_coverage_error`` reports the largest relative
deviation between a record's span sum and its measured service
latency, which the acceptance bar requires to stay within 1%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.obs.tracer import COMPONENTS, RequestRecord
from repro.units import US

#: Percentile bands, as (label, low, high] over the sorted latency rank.
BUCKETS = (
    ("p0-p50", 0.0, 0.50),
    ("p50-p90", 0.50, 0.90),
    ("p90-p99", 0.90, 0.99),
    ("p99-p100", 0.99, 1.0),
)


@dataclass
class AttributionBucket:
    """Mean component composition of one percentile band."""

    label: str
    count: int
    mean_latency_ns: float
    components: Dict[str, float] = field(default_factory=dict)

    def share(self, component: str) -> float:
        if self.mean_latency_ns <= 0.0:
            return 0.0
        return self.components.get(component, 0.0) / self.mean_latency_ns


@dataclass
class RunAttribution:
    """Attribution for all sampled requests of one run."""

    run: str
    count: int
    mean_latency_ns: float
    p99_latency_ns: float
    buckets: List[AttributionBucket]
    worst_coverage_error: float

    def bucket(self, label: str) -> AttributionBucket:
        for bucket in self.buckets:
            if bucket.label == label:
                return bucket
        raise KeyError(label)


def _mean_components(records: Sequence[RequestRecord]
                     ) -> Dict[str, float]:
    sums = dict.fromkeys(COMPONENTS, 0.0)
    for record in records:
        for name in COMPONENTS:
            sums[name] += getattr(record, name)
    count = max(1, len(records))
    return {name: total / count for name, total in sums.items()}


def attribute(records: Sequence[RequestRecord]) -> List[RunAttribution]:
    """Bucket completed records by latency percentile, per run."""
    by_run: Dict[str, List[RequestRecord]] = {}
    for record in records:
        if record.finished_at is None:
            continue
        by_run.setdefault(record.run, []).append(record)

    out: List[RunAttribution] = []
    for run, group in by_run.items():
        group.sort(key=lambda r: r.service_latency_ns)
        count = len(group)
        latencies = [r.service_latency_ns for r in group]
        buckets: List[AttributionBucket] = []
        for label, low, high in BUCKETS:
            lo = int(low * count)
            hi = max(lo + 1, int(high * count)) if high < 1.0 else count
            members = group[lo:hi]
            if not members:
                continue
            buckets.append(AttributionBucket(
                label=label,
                count=len(members),
                mean_latency_ns=(sum(r.service_latency_ns for r in members)
                                 / len(members)),
                components=_mean_components(members),
            ))
        worst = 0.0
        for record in group:
            measured = record.service_latency_ns
            if measured > 0.0:
                worst = max(worst,
                            abs(record.span_sum_ns() - measured) / measured)
        out.append(RunAttribution(
            run=run,
            count=count,
            mean_latency_ns=sum(latencies) / count,
            p99_latency_ns=latencies[min(count - 1,
                                         int(0.99 * (count - 1) + 0.5))],
            buckets=buckets,
            worst_coverage_error=worst,
        ))
    out.sort(key=lambda a: a.run)
    return out


def format_attribution(attributions: Sequence[RunAttribution]) -> str:
    """Render the Table-2-style breakdown as an ASCII report."""
    if not attributions:
        return "tail-latency attribution: no sampled requests completed"
    lines: List[str] = []
    active = [c for c in COMPONENTS
              if any(b.components.get(c, 0.0) > 0.0
                     for a in attributions for b in a.buckets)]
    for attribution in attributions:
        lines.append(
            f"{attribution.run}: {attribution.count} sampled requests, "
            f"mean {attribution.mean_latency_ns / US:.1f} us, "
            f"p99 {attribution.p99_latency_ns / US:.1f} us "
            f"(worst span-sum error "
            f"{attribution.worst_coverage_error:.3%})"
        )
        header = f"  {'bucket':<10} {'n':>6} {'mean us':>9}"
        for component in active:
            header += f" {component:>13}"
        lines.append(header)
        for bucket in attribution.buckets:
            row = (f"  {bucket.label:<10} {bucket.count:>6} "
                   f"{bucket.mean_latency_ns / US:>9.1f}")
            for component in active:
                value = bucket.components.get(component, 0.0)
                row += (f" {value / US:>6.1f}"
                        f" ({bucket.share(component):>4.0%})")
            lines.append(row)
        lines.append("")
    return "\n".join(lines).rstrip()
