"""On-chip SRAM cache model.

A functional set-associative cache with LRU replacement and a bounded
MSHR file.  The performance simulation folds on-chip hit latency into
workload compute segments (DESIGN.md), but this model backs:

* unit tests of the miss-signal reclaim path (Sec. IV-C1: a DRAM-cache
  miss frees the MSHRs at every level on its way to the core);
* the LLC-filtering estimate used by workload calibration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CapacityError, ConfigurationError
from repro.stats import CounterSet
from repro.units import CACHE_BLOCK_SIZE


class SramCache:
    """A set-associative cache of 64 B blocks with LRU replacement."""

    def __init__(self, capacity_bytes: int, associativity: int = 16,
                 block_size: int = CACHE_BLOCK_SIZE, name: str = "llc",
                 mshr_entries: int = 16) -> None:
        if capacity_bytes < block_size * associativity:
            raise ConfigurationError("cache smaller than one set")
        if associativity < 1 or mshr_entries < 1:
            raise ConfigurationError("associativity and MSHRs must be positive")
        self.name = name
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = capacity_bytes // (block_size * associativity)
        self.mshr_entries = mshr_entries
        # set index -> list of (tag, last_touch) in way order
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._clock = 0
        self._outstanding: Dict[int, int] = {}  # block address -> waiter count
        self.stats = CounterSet(name)

    def _index_tag(self, address: int) -> tuple:
        block = address // self.block_size
        return block % self.num_sets, block

    def access(self, address: int) -> bool:
        """Look up one address; fills on miss.  Returns hit/miss."""
        index, tag = self._index_tag(address)
        ways = self._sets[index]
        self._clock += 1
        if tag in ways:
            ways[tag] = self._clock
            self.stats.add("hits")
            return True
        self.stats.add("misses")
        if len(ways) >= self.associativity:
            lru_tag = min(ways, key=ways.get)
            del ways[lru_tag]
            self.stats.add("evictions")
        ways[tag] = self._clock
        return False

    def contains(self, address: int) -> bool:
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    # -- MSHR / miss-signal path -----------------------------------------------

    def allocate_mshr(self, address: int) -> None:
        """Track an outstanding fill for ``address``'s block."""
        if len(self._outstanding) >= self.mshr_entries:
            raise CapacityError(f"{self.name} MSHRs exhausted")
        block = address // self.block_size
        self._outstanding[block] = self._outstanding.get(block, 0) + 1

    def reclaim_mshr(self, address: int) -> None:
        """Free the MSHR on data return *or* on a DRAM-cache miss
        signal travelling up the hierarchy (Sec. IV-C1)."""
        block = address // self.block_size
        count = self._outstanding.get(block)
        if count is None:
            raise CapacityError(f"no outstanding fill for block {block}")
        if count == 1:
            del self._outstanding[block]
        else:
            self._outstanding[block] = count - 1
        self.stats.add("mshr_reclaims")

    @property
    def outstanding_fills(self) -> int:
        return sum(self._outstanding.values())

    def miss_ratio(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["misses"] / total


class CacheHierarchy:
    """A simple L1/L2/LLC inclusive hierarchy for miss-signal tests."""

    def __init__(self, levels: Optional[List[SramCache]] = None) -> None:
        if levels is None:
            levels = [
                SramCache(64 * 1024, associativity=4, name="l1", mshr_entries=8),
                SramCache(512 * 1024, associativity=8, name="l2", mshr_entries=12),
                SramCache(2 * 1024 * 1024, associativity=16, name="llc",
                          mshr_entries=16),
            ]
        if not levels:
            raise ConfigurationError("hierarchy needs at least one level")
        self.levels = levels

    def access(self, address: int) -> int:
        """Returns the number of levels missed (0 = L1 hit)."""
        for depth, cache in enumerate(self.levels):
            if cache.access(address):
                return depth
        return len(self.levels)

    def track_outstanding(self, address: int) -> None:
        """A request missed all levels: MSHRs allocated at each."""
        for cache in self.levels:
            cache.allocate_mshr(address)

    def reclaim_on_miss_signal(self, address: int) -> None:
        """DRAM-cache miss signal: reclaim MSHRs bottom-up."""
        for cache in reversed(self.levels):
            cache.reclaim_mshr(address)
