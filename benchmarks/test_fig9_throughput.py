"""Benchmark: regenerate Fig. 9 (throughput normalized to DRAM-only).

Paper: AstriFlash ~95% (Ideal ~96%), OS-Swap ~58%, Flash-Sync ~27% of
the DRAM-only system's throughput; TPCC degrades most under AstriFlash.
"""

from conftest import run_once

from repro.harness import run_experiment


def test_fig9_throughput(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "fig9",
                      scale=harness_scale)
    print("\n" + result.format_table())

    geomean = dict(zip(result.columns[1:], result.rows[-1][1:]))
    # Ordering: Flash-Sync << OS-Swap << AstriFlash <~ Ideal < 1.
    assert geomean["flash-sync"] < geomean["os-swap"]
    assert geomean["os-swap"] < geomean["astriflash"]
    assert geomean["astriflash"] <= 1.05
    # Rough factors from the paper.
    assert geomean["astriflash"] > 0.75
    assert geomean["os-swap"] < 0.75
    assert geomean["flash-sync"] < 0.45

    # TPCC (compute-heavy ROB) pays the largest AstriFlash penalty
    # among the workloads present.
    rows = {row[0]: dict(zip(result.columns[1:], row[1:]))
            for row in result.rows[:-1]}
    if "tpcc" in rows:
        others = [rows[w]["astriflash"] for w in rows if w != "tpcc"]
        assert rows["tpcc"]["astriflash"] <= min(others) + 0.05
