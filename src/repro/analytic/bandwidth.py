"""Equation 1: flash bandwidth required to refill the DRAM cache.

    BW_flash = BW_DRAM / BlockSize * MissRate * PageSize

Every DRAM-cache miss pulls a whole 4 KiB page from flash while the
cores consume 64 B blocks from DRAM, so the refill bandwidth is the
block-level demand scaled by the page/block amplification and the miss
rate (Sec. II-A, Fig. 1).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import CACHE_BLOCK_SIZE, PAGE_SIZE

# Paper values (Sec. II-A).
AVERAGE_DRAM_BANDWIDTH_PER_CORE_GBPS = 0.5
PAPER_CORE_COUNT = 64
PCIE_GEN5_BANDWIDTH_GBPS = 128.0


def flash_bandwidth_per_core_gbps(
        miss_rate: float,
        dram_bandwidth_gbps: float = AVERAGE_DRAM_BANDWIDTH_PER_CORE_GBPS,
        page_size: int = PAGE_SIZE,
        block_size: int = CACHE_BLOCK_SIZE) -> float:
    """Equation 1 for one core, in GB/s."""
    if not 0.0 <= miss_rate <= 1.0:
        raise ConfigurationError("miss rate must be in [0,1]")
    if page_size < block_size:
        raise ConfigurationError("page smaller than a block")
    return dram_bandwidth_gbps / block_size * miss_rate * page_size


def flash_bandwidth_total_gbps(miss_rate: float, num_cores: int,
                               **kwargs) -> float:
    """Aggregate Equation-1 bandwidth for ``num_cores`` cores."""
    if num_cores < 1:
        raise ConfigurationError("need at least one core")
    return num_cores * flash_bandwidth_per_core_gbps(miss_rate, **kwargs)


def fits_in_pcie_gen5(miss_rate: float, num_cores: int) -> bool:
    """Does the refill traffic fit under a PCIe Gen5 x16 link?"""
    return flash_bandwidth_total_gbps(miss_rate, num_cores) \
        <= PCIE_GEN5_BANDWIDTH_GBPS
