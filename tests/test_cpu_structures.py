"""Unit tests for PRF, map table, ROB, SB, and MSHRs."""

import pytest

from repro.cpu import (
    InstructionKind,
    MapTable,
    MshrFile,
    PhysicalRegisterFile,
    ReorderBuffer,
    RobEntry,
    StoreBuffer,
    StoreBufferEntry,
)
from repro.errors import CapacityError, ConfigurationError, ProtocolError


class TestPhysicalRegisterFile:
    def test_allocate_until_exhausted(self):
        prf = PhysicalRegisterFile(2)
        prf.allocate()
        prf.allocate()
        with pytest.raises(CapacityError):
            prf.allocate()

    def test_free_recycles(self):
        prf = PhysicalRegisterFile(1)
        reg = prf.allocate()
        prf.free(reg)
        assert prf.allocate() == reg

    def test_double_free_raises(self):
        prf = PhysicalRegisterFile(2)
        reg = prf.allocate()
        prf.free(reg)
        with pytest.raises(ProtocolError):
            prf.free(reg)

    def test_out_of_range_free_raises(self):
        prf = PhysicalRegisterFile(2)
        with pytest.raises(ProtocolError):
            prf.free(5)


class TestMapTable:
    def test_initial_identity_like_mapping(self):
        prf = PhysicalRegisterFile(8)
        table = MapTable(4, prf)
        assert prf.allocated_count == 4
        mapped = {table.lookup(i) for i in range(4)}
        assert len(mapped) == 4

    def test_rename_returns_old_mapping(self):
        prf = PhysicalRegisterFile(8)
        table = MapTable(2, prf)
        old_mapping = table.lookup(0)
        new, old = table.rename(0)
        assert old == old_mapping
        assert table.lookup(0) == new

    def test_snapshot_restore(self):
        prf = PhysicalRegisterFile(8)
        table = MapTable(2, prf)
        snapshot = table.snapshot()
        table.rename(0)
        table.restore(snapshot)
        assert table.snapshot() == snapshot

    def test_restore_size_mismatch_raises(self):
        prf = PhysicalRegisterFile(8)
        table = MapTable(2, prf)
        with pytest.raises(ProtocolError):
            table.restore([0])

    def test_undo_rename(self):
        prf = PhysicalRegisterFile(8)
        table = MapTable(2, prf)
        new, old = table.rename(1)
        table.undo_rename(1, old)
        assert table.lookup(1) == old


class TestReorderBuffer:
    def test_program_order_enforced(self):
        rob = ReorderBuffer(4)
        rob.allocate(RobEntry(0, InstructionKind.ALU, 1, 10, 11, None))
        with pytest.raises(ProtocolError):
            rob.allocate(RobEntry(0, InstructionKind.ALU, 1, 12, 13, None))

    def test_capacity(self):
        rob = ReorderBuffer(1)
        rob.allocate(RobEntry(0, InstructionKind.ALU, None, None, None, None))
        with pytest.raises(CapacityError):
            rob.allocate(RobEntry(1, InstructionKind.ALU, None, None, None, None))

    def test_retire_requires_completion(self):
        rob = ReorderBuffer(4)
        entry = RobEntry(0, InstructionKind.LOAD, 1, 10, 11, 5)
        rob.allocate(entry)
        with pytest.raises(ProtocolError):
            rob.retire_head()
        entry.completed = True
        assert rob.retire_head() is entry

    def test_stores_retire_without_completion(self):
        rob = ReorderBuffer(4)
        rob.allocate(RobEntry(0, InstructionKind.STORE, None, None, None, 5))
        assert rob.retire_head().kind == InstructionKind.STORE

    def test_flush_from_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        for seq in range(4):
            rob.allocate(RobEntry(seq, InstructionKind.ALU, None, None, None, None))
        squashed = rob.flush_from(2)
        assert [e.seq for e in squashed] == [3, 2]
        assert [e.seq for e in rob.entries()] == [0, 1]

    def test_flush_nothing_raises(self):
        rob = ReorderBuffer(4)
        rob.allocate(RobEntry(0, InstructionKind.ALU, None, None, None, None))
        with pytest.raises(ProtocolError):
            rob.flush_from(5)


class TestStoreBuffer:
    def _entry(self, seq):
        return StoreBufferEntry(seq, page=seq, map_snapshot=[0], speculative_regs=[])

    def test_fifo_completion(self):
        sb = StoreBuffer(4)
        sb.push(self._entry(0))
        sb.push(self._entry(1))
        assert sb.complete_head().seq == 0
        assert sb.complete_head().seq == 1

    def test_capacity(self):
        sb = StoreBuffer(1)
        sb.push(self._entry(0))
        assert sb.is_full
        with pytest.raises(CapacityError):
            sb.push(self._entry(1))

    def test_abort_from_youngest_first(self):
        sb = StoreBuffer(4)
        for seq in range(3):
            sb.push(self._entry(seq))
        aborted = sb.abort_from(1)
        assert [e.seq for e in aborted] == [2, 1]
        assert [e.seq for e in sb.entries()] == [0]

    def test_program_order_enforced(self):
        sb = StoreBuffer(4)
        sb.push(self._entry(5))
        with pytest.raises(ProtocolError):
            sb.push(self._entry(3))


class TestMshrFile:
    def test_allocate_and_reclaim_by_page(self):
        mshrs = MshrFile(4)
        mshrs.allocate(page=100, rob_seq=7)
        entry = mshrs.reclaim_by_page(100)
        assert entry.rob_seq == 7
        assert len(mshrs) == 0

    def test_capacity(self):
        mshrs = MshrFile(1)
        mshrs.allocate(page=1, rob_seq=0)
        with pytest.raises(CapacityError):
            mshrs.allocate(page=2, rob_seq=1)

    def test_reclaim_unknown_raises(self):
        mshrs = MshrFile(2)
        with pytest.raises(ProtocolError):
            mshrs.reclaim_by_page(42)
        with pytest.raises(ProtocolError):
            mshrs.reclaim(9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MshrFile(0)
