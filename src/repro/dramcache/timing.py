"""DRAM-cache timing model.

Tags live in the DRAM rows with the data (Sec. IV-B), so every access
pays a serialized tag probe (RAS to open the row + CAS to read the tag
column) before data can move.  The frontside controller is a 1-cycle
FSM; the backside controller is programmable microcode at 3 cycles per
command (Sec. V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import DramCacheConfig
from repro.units import CACHE_BLOCK_SIZE


@dataclass(frozen=True)
class DramCacheTiming:
    """Pre-computed latencies for the common controller operations."""

    tag_probe_ns: float          # RAS + CAS to read the tag column
    hit_data_ns: float           # CAS + burst for the requested 64B block
    miss_signal_ns: float        # miss decision + miss response upstream
    page_install_ns: float       # streaming a 4 KiB page into the row
    frontside_command_ns: float
    backside_command_ns: float

    @property
    def hit_latency_ns(self) -> float:
        """Total in-DRAM latency of a cache hit (serialized tag+data)."""
        return self.tag_probe_ns + self.hit_data_ns + self.frontside_command_ns

    @property
    def miss_detect_ns(self) -> float:
        """Latency from request arrival to the miss signal heading to
        the core."""
        return self.tag_probe_ns + self.miss_signal_ns


def build_timing(config: DramCacheConfig) -> DramCacheTiming:
    """Derive the timing table from a :class:`DramCacheConfig`."""
    fc_cycle = config.controller_cycle_ns * config.frontside_cycles_per_command
    bc_cycle = config.controller_cycle_ns * config.backside_cycles_per_command
    tag_probe = config.row_activate_ns + config.column_access_ns
    if config.way_prediction:
        # Data for the predicted way streams out with the tag column;
        # only the burst remains after the (overlapped) tag check.
        hit_data = config.data_transfer_ns
    else:
        hit_data = config.column_access_ns + config.data_transfer_ns
    # Miss: FC issues the miss request to BC (1 command) and the miss
    # response to the LLC (1 command).
    miss_signal = 2 * fc_cycle
    # Install: burst the page into the open row, one transfer slot per
    # 64B block.
    blocks_per_page = config.page_size // CACHE_BLOCK_SIZE
    page_install = (
        config.row_activate_ns
        + config.column_access_ns
        + blocks_per_page * config.data_transfer_ns
    )
    return DramCacheTiming(
        tag_probe_ns=tag_probe,
        hit_data_ns=hit_data,
        miss_signal_ns=miss_signal,
        page_install_ns=page_install,
        frontside_command_ns=fc_cycle,
        backside_command_ns=bc_cycle,
    )


def flat_partition_access_ns(config: DramCacheConfig) -> float:
    """Latency of an access to the flat (uncached, tag-free) DRAM
    partition, e.g. a page-table walk step under DRAM partitioning."""
    return (
        config.row_activate_ns
        + config.column_access_ns
        + config.data_transfer_ns
        + config.controller_cycle_ns * config.frontside_cycles_per_command
    )
