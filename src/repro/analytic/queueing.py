"""Analytic queueing models behind Fig. 3 (and the Fig. 2 argument).

The paper compares four designs with a single physical server per core:

* **DRAM-only** — M/M/1 with service time S (no flash stalls);
* **Flash-Sync** — M/M/1 whose service time includes every flash stall
  synchronously (throughput collapses to S/(S+stalls));
* **AstriFlash / OS-Swap** — M/M/k: k outstanding requests overlap the
  flash stalls, so one physical server behaves like k logical servers.
  The core is only busy for the work plus the per-stall core-side
  overhead (100 ns switch for AstriFlash, ~10 us fault+switch for
  OS-Swap), which caps throughput; the stall itself only adds latency.

Closed forms: Erlang-C waiting probability and the exact survival
function of W + S for M/M/k, inverted by bisection for percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival waits in an M/M/k queue.

    ``offered_load`` is a = lambda/mu (in Erlangs); requires a < k.
    """
    if servers < 1:
        raise ConfigurationError("need at least one server")
    if offered_load < 0:
        raise ConfigurationError("offered load cannot be negative")
    if offered_load >= servers:
        raise ConfigurationError("queue unstable: load >= servers")
    if offered_load == 0:
        return 0.0
    # Sum a^n/n! for n < k, computed iteratively for stability.
    term = 1.0
    total = 1.0
    for n in range(1, servers):
        term *= offered_load / n
        total += term
    top = term * offered_load / servers  # a^k/k!
    top *= servers / (servers - offered_load)
    return top / (total + top)


def mmk_response_survival(t: float, arrival_rate: float, service_rate: float,
                          servers: int) -> float:
    """P(response time > t) for M/M/k (response = wait + service)."""
    if t < 0:
        return 1.0
    mu = service_rate
    a = arrival_rate / mu
    c = erlang_c(servers, a)
    theta = servers * mu - arrival_rate  # wait-tail decay rate
    if abs(theta - mu) < 1e-12 * mu:
        # Degenerate case: W and S decay at the same rate.
        return math.exp(-mu * t) * (1.0 - c + c * (1.0 + mu * t))
    wait_part = c * (theta * (math.exp(-theta * t) - math.exp(-mu * t))
                     / (mu - theta) + math.exp(-theta * t))
    return (1.0 - c) * math.exp(-mu * t) + wait_part


def mmk_response_percentile(fraction: float, arrival_rate: float,
                            service_rate: float, servers: int) -> float:
    """Response-time percentile for M/M/k by bisection."""
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError("percentile fraction in (0,1) required")
    target = 1.0 - fraction
    low, high = 0.0, 1.0 / service_rate
    while mmk_response_survival(high, arrival_rate, service_rate,
                                servers) > target:
        high *= 2.0
        if high > 1e15:
            raise ConfigurationError("percentile did not converge")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if mmk_response_survival(mid, arrival_rate, service_rate,
                                 servers) > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def mm1_response_percentile(fraction: float, arrival_rate: float,
                            service_rate: float) -> float:
    """Exact M/M/1 response-time percentile: Exp(mu - lambda)."""
    if arrival_rate >= service_rate:
        raise ConfigurationError("queue unstable: lambda >= mu")
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError("percentile fraction in (0,1) required")
    return -math.log(1.0 - fraction) / (service_rate - arrival_rate)


@dataclass(frozen=True)
class OverlapModel:
    """One design point of Fig. 3.

    ``work_ns``               — pure compute per request (DRAM-only
                                 service time);
    ``stall_ns``              — total flash stall per request;
    ``core_overhead_ns``      — core-side cost per request of hiding the
                                 stalls (switches, faults); 0 for
                                 DRAM-only, everything for Flash-Sync is
                                 folded into the stall instead.
    ``synchronous``           — True = stalls block the server (M/M/1).
    """

    name: str
    work_ns: float
    stall_ns: float = 0.0
    core_overhead_ns: float = 0.0
    synchronous: bool = False

    @property
    def service_time_ns(self) -> float:
        """End-to-end service time of one request in isolation."""
        return self.work_ns + self.stall_ns + self.core_overhead_ns

    @property
    def core_busy_ns(self) -> float:
        """Time the physical server is occupied per request."""
        if self.synchronous:
            return self.service_time_ns
        return self.work_ns + self.core_overhead_ns

    @property
    def max_throughput_per_second(self) -> float:
        return 1e9 / self.core_busy_ns

    @property
    def servers(self) -> int:
        """Logical multi-server width: the number of requests required
        to overlap the flash accesses (Sec. III-A's M/M/k)."""
        if self.synchronous:
            return 1
        return max(1, math.ceil(self.service_time_ns / self.core_busy_ns))

    def percentile_ns(self, fraction: float,
                      arrival_rate_per_second: float) -> float:
        """Response-time percentile at the given arrival rate."""
        lam = arrival_rate_per_second / 1e9  # per ns
        mu = 1.0 / self.service_time_ns
        k = self.servers
        if k == 1:
            return mm1_response_percentile(fraction, lam, mu)
        return mmk_response_percentile(fraction, lam, mu, k)

    def latency_curve(self, fraction: float,
                      load_points: List[float]) -> List[tuple]:
        """(normalized load, percentile ns) pairs; load is relative to
        this model's own maximum throughput."""
        curve = []
        for load in load_points:
            if not 0.0 < load < 1.0:
                raise ConfigurationError("load points must be in (0,1)")
            lam = load * self.max_throughput_per_second
            curve.append((load, self.percentile_ns(fraction, lam)))
        return curve


def paper_figure3_models(work_ns: float = 10_000.0,
                         flash_ns: float = 50_000.0,
                         astriflash_overhead_ns: float = 200.0,
                         os_overhead_ns: float = 10_000.0) -> List[OverlapModel]:
    """The four Fig. 3 configurations with the paper's example numbers:
    10 us of work triggering one 50 us flash access."""
    return [
        OverlapModel("dram-only", work_ns),
        OverlapModel("astriflash", work_ns, stall_ns=flash_ns,
                     core_overhead_ns=astriflash_overhead_ns),
        OverlapModel("os-swap", work_ns, stall_ns=flash_ns,
                     core_overhead_ns=os_overhead_ns),
        OverlapModel("flash-sync", work_ns, stall_ns=flash_ns,
                     synchronous=True),
    ]
