"""Vectorized batch-execution backend (DESIGN.md §4h).

The scalar engine advances one heap pop at a time; most of those pops
are compute-quantum resumes whose timing is fully determined the moment
the job is dispatched.  This module batches that predictable work into
*epochs* between event horizons:

* whole jobs are **planned** up front — zipf pages, compute jitter and
  TLB draws are pulled as numpy blocks from the *same* RNG streams the
  scalar path consumes one call at a time (`BatchedRandom`,
  `ZipfianGenerator.sample_block`), so stream positions stay aligned;
* per-step latencies are materialized with numpy and the quantum
  boundaries recovered by a sequential scan that re-runs the scalar
  accumulation adds bit-for-bit (float addition is non-associative, so
  boundaries cannot come from a block cumsum);
* the DRAM-only single-core measurement loop is then **fused**: bursts
  retire without touching the event heap at all, and the engine clock /
  event tally are synchronized in batches via `Engine.advance_batch`;
* the Flash-Sync single-core loop keeps the event engine (misses run
  the full FC→BC→flash machinery unchanged) but probes hit runs
  through `DramCacheOrganization.lookup_many` one burst at a time.

Everything else — multi-core interleaving, open-loop arrivals, tracing,
fault plans — **falls back to the scalar path**, which remains the
golden reference.  The contract is bit-identity: same
`state_fingerprint`, same deterministic stats, same
`engine.events_executed`, enforced by tests/test_vector_backend.py and
the CI perf-smoke job.

Selection: ``REPRO_BACKEND=vector`` (env) or ``backend="vector"``
(Runner/CLI).  Default is ``scalar``.
"""

from __future__ import annotations

import os
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Recognized backend names.
BACKENDS = ("scalar", "vector")

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: explicit argument, else $REPRO_BACKEND,
    else ``scalar``."""
    name = explicit if explicit else os.environ.get(ENV_VAR, "")
    name = (name or "scalar").strip().lower()
    if name not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ConfigurationError(
            f"unknown backend {name!r}; known: {known}"
        )
    return name


# Run-shape telemetry for the vector backend, process-wide (mirrors
# runner._WALL_TOTALS).  Deliberately *not* part of SimulationResult
# counters: results must stay byte-identical across backends.
_STATS: Dict[str, int] = {}


def _reset_stats() -> None:
    _STATS.update({
        "fused_runs": 0,        # DRAM-only runs on the fused loop
        "job_epoch_runs": 0,    # Flash-Sync runs on the job-epoch loop
        "scalar_fallbacks": 0,  # vector requested but shape unsupported
        "epochs": 0,            # bursts retired without a heap pop
        "batched_jobs": 0,      # jobs planned as a block
        "batched_steps": 0,     # steps materialized through numpy
        "hit_run_probes": 0,    # tag probes served via lookup_many
    })


#: Per-reason fallback counts (reason string -> occurrences since the
#: last reset) — the surfaced form of scalar_fallbacks: ``repro
#: profile``/``bench-kernel`` JSON embed it and the CLI warns on
#: stderr when a requested vector run silently fell back.
_FALLBACK_REASONS: Dict[str, int] = {}

_reset_stats()
_LAST_FALLBACK_REASON = ""


def stats() -> Dict[str, int]:
    """Snapshot of the process-wide vector-backend telemetry."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the telemetry (test isolation)."""
    _reset_stats()
    _FALLBACK_REASONS.clear()


def run_stats() -> Dict[str, int]:
    """The live telemetry dict (internal: the vector loops bump it)."""
    return _STATS


def last_fallback_reason() -> str:
    return _LAST_FALLBACK_REASON


def fallback_reasons() -> Dict[str, int]:
    """Snapshot of per-reason scalar-fallback counts since reset."""
    return dict(_FALLBACK_REASONS)


# --------------------------------------------------------------- RNG bridge --


class BatchedRandom:
    """Block draws from a ``random.Random`` via numpy, stream-exactly.

    CPython's ``random.Random`` and ``numpy.random.RandomState`` share
    the Mersenne-Twister core *and* the 53-bit double construction
    (``genrand_res53``), so transplanting the 624-word key/position
    state lets numpy produce the next ``n`` doubles bit-identically to
    ``n`` calls of ``rng.random()``.

    The 625-word state transplant costs far more than a small draw, so
    draws are served from an internal buffer and the Python RNG is
    *not* touched per call: refills chain fresh numpy draws onto the
    unserved tail, and the owner calls :meth:`sync` once (end of run)
    to fast-forward the Python stream to exactly the consumed position
    (one fresh transplant plus a replay of the consumed count).
    Between construction and :meth:`sync`, drawing from the underlying
    ``random.Random`` directly would fork the stream — the vector run
    shapes guarantee no such consumer exists.
    """

    __slots__ = ("_rng", "_np", "_block", "_buffer", "_cursor",
                 "_drawn")

    def __init__(self, rng: random.Random, block: int = 8192) -> None:
        self._rng = rng
        self._np = np.random.RandomState()
        self._block = block
        self._buffer: Optional[np.ndarray] = None
        self._cursor = 0
        # Doubles drawn from the numpy stream since bridging; consumed
        # position = _drawn - unserved tail.
        self._drawn = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` uniform doubles of the underlying stream."""
        buffer = self._buffer
        cursor = self._cursor
        if buffer is not None and cursor + n <= buffer.shape[0]:
            self._cursor = cursor + n
            return buffer[cursor:self._cursor]
        return self._refill_take(n)

    def _bridge_in(self) -> None:
        _version, internal, _gauss = self._rng.getstate()
        self._np.set_state(
            ("MT19937",
             np.asarray(internal[:-1], dtype=np.uint32),
             internal[-1])
        )

    def _refill_take(self, n: int) -> np.ndarray:
        npr = self._np
        if self._buffer is None:
            version = self._rng.getstate()[0]
            if version != 3:  # pragma: no cover - all supported CPythons
                return np.array([self._rng.random() for _ in range(n)])
            self._bridge_in()
            self._drawn = 0
            head = self._buffer  # None
        else:
            head = self._buffer[self._cursor:]
            if head.shape[0] == 0:
                head = None
        need = n if head is None else n - head.shape[0]
        size = self._block if need <= self._block else need
        fresh = npr.random_sample(size)
        self._drawn += size
        self._buffer = (fresh if head is None
                        else np.concatenate((head, fresh)))
        self._cursor = n
        return self._buffer[:n]

    def sync(self) -> None:
        """Fast-forward the Python RNG to the consumed position."""
        if self._buffer is None:
            return
        consumed = self._drawn - (self._buffer.shape[0] - self._cursor)
        npr = self._np
        version, _internal, gauss_next = self._rng.getstate()
        self._bridge_in()
        if consumed:
            npr.random_sample(consumed)
        _kind, keys, pos, _has_gauss, _cached = npr.get_state(legacy=True)
        self._rng.setstate(
            (version, tuple(keys.tolist()) + (int(pos),), gauss_next)
        )
        self._buffer = None
        self._cursor = 0
        self._drawn = 0


def uniform_block(rng: random.Random, n: int) -> np.ndarray:
    """One-shot block draw with immediate resync (tests, one-offs)."""
    batched = BatchedRandom(rng, block=n)
    block = batched.take(n)
    batched.sync()
    return block


# ------------------------------------------------------------ step planning --


def step_deltas(comp: List[float], tlb_draws: np.ndarray, tlb_p: float,
                walk_ns: float) -> Tuple[List[float], List[bool]]:
    """Per-step pre-access latency and TLB-miss flags.

    Replicates the scalar expression
    ``step.compute_ns + (0.0 if draw >= tlb_p else walk_ns)`` — one
    float64 add per step, walk charged on ``draw < tlb_p`` (the exact
    complement, ties included).  Small jobs take a plain-Python pass
    (IEEE adds are the same bits either way and the per-call numpy
    overhead dominates below a few hundred steps); large blocks go
    through one numpy pass.
    """
    if len(comp) < 256:
        d1: List[float] = []
        flags: List[bool] = []
        append_d1 = d1.append
        append_flag = flags.append
        for c, draw in zip(comp, tlb_draws.tolist()):
            if draw < tlb_p:
                append_flag(True)
                append_d1(c + walk_ns)
            else:
                append_flag(False)
                append_d1(c + 0.0)
        return d1, flags
    draws = np.asarray(tlb_draws)
    missed = draws < tlb_p
    d1_arr = np.asarray(comp, dtype=np.float64) + np.where(missed, walk_ns, 0.0)
    return d1_arr.tolist(), missed.tolist()


def scan_bursts(d1: List[float], miss_flags: List[bool], flat: float,
                quantum: float) -> Tuple[List[float], List[int], List[int]]:
    """Quantum-burst boundaries for one job, scalar-add-exact.

    Re-runs the inner-loop accumulation (``acc += d1; acc += flat``,
    two separate adds, reset to 0.0 at each crossing) so burst
    durations carry the identical float rounding the scalar path
    produces.  Returns parallel lists: burst duration, steps in the
    burst, TLB misses in the burst.  The trailing partial burst is
    included when non-empty; a job whose last step lands exactly on a
    quantum boundary has no trailing burst, matching the scalar
    ``if accumulated > 0.0`` flush guard.
    """
    durations: List[float] = []
    step_counts: List[int] = []
    tlb_counts: List[int] = []
    acc = 0.0
    steps = 0
    misses = 0
    for delta, missed in zip(d1, miss_flags):
        acc += delta
        acc += flat
        steps += 1
        if missed:
            misses += 1
        if acc >= quantum:
            durations.append(acc)
            step_counts.append(steps)
            tlb_counts.append(misses)
            acc = 0.0
            steps = 0
            misses = 0
    if steps:
        durations.append(acc)
        step_counts.append(steps)
        tlb_counts.append(misses)
    return durations, step_counts, tlb_counts


def scan_durations(d1: List[float], flat: float,
                   quantum: float) -> List[float]:
    """Burst durations only — the :func:`scan_bursts` fold without the
    per-burst step/miss bookkeeping (fast path for block-planned jobs;
    crossing jobs rescan with :func:`scan_bursts` for the counts).

    The trailing-burst guard is ``acc > 0.0`` rather than a step
    count: every step contributes a strictly positive delta (compute
    jitter > 0, flat DRAM latency > 0), so a zero accumulator means
    the last step landed exactly on a quantum boundary.
    """
    durations: List[float] = []
    append = durations.append
    acc = 0.0
    for delta in d1:
        acc += delta
        acc += flat
        if acc >= quantum:
            append(acc)
            acc = 0.0
    if acc > 0.0:
        append(acc)
    return durations


# ----------------------------------------------------------- run-shape gate --


def classify(runner) -> Tuple[Optional[str], str]:
    """Which vector loop (if any) can run this shape bit-identically.

    Returns ``(kind, reason)`` where kind is ``"fused"`` (DRAM-only,
    no event heap), ``"job-epoch"`` (Flash-Sync, batched hit runs) or
    ``None`` with the fallback reason.  The gates mirror DESIGN.md
    §4h: anything that interleaves independent RNG/heap consumers at
    sub-job granularity (multi-core, open-loop arrivals), observes
    per-event state (tracing) or draws from a fault plan keeps the
    scalar path.
    """
    from repro.config.system import PagingMode
    from repro.workloads.arrival import ClosedLoop

    if runner._tracer is not None:
        return None, "tracing active (per-event observation)"
    if not isinstance(runner.arrivals, ClosedLoop):
        return None, "open-loop arrivals (trace exhaustion / wakeups)"
    if runner.config.num_cores != 1:
        return None, "multi-core (shared RNG streams interleave)"
    mode = runner.config.mode
    if mode is PagingMode.DRAM_ONLY:
        return "fused", ""
    if mode is PagingMode.FLASH_SYNC:
        if runner.machine.flash is not None \
                and runner.machine.flash.faults is not None:
            return None, "fault plan active (per-read outcome draws)"
        return "job-epoch", ""
    return None, f"mode {mode.name} multiplexes threads per burst"


def record_fallback(reason: str) -> None:
    global _LAST_FALLBACK_REASON
    _STATS["scalar_fallbacks"] += 1
    _FALLBACK_REASONS[reason] = _FALLBACK_REASONS.get(reason, 0) + 1
    _LAST_FALLBACK_REASON = reason


# ------------------------------------------------------- fused DRAM-only loop --


#: Steps planned per numpy pass on the fused path (amortizes the
#: per-call numpy overhead over several thousand steps).  The job
#: count per block adapts to the workload's steps-per-job so long
#: requests don't balloon a block past the measurement window.
PLAN_BLOCK_STEPS = 12288

#: Jobs in the first (probe) block, before steps-per-job is known.
PLAN_PROBE_JOBS = 16

#: Safety margin for the interior-job fast path.  ``sum(durations)``
#: is a left-fold like the exact per-burst adds but its rounding can
#: differ by a few ulp (~1e-9 ns at these magnitudes); a job is only
#: fast-pathed when even that estimate plus this margin stays inside
#: the window, so truncation decisions always take the exact path.
_FAST_PATH_GUARD_NS = 64.0


def run_fused(runner) -> None:
    """Measurement phase of a single-core DRAM-only run, heap-free.

    Replaces ``spawn(core_loop) + engine.run(until=end)`` for the shape
    :func:`classify` vetted.  Event accounting replicates the scalar
    run exactly: one spawn resume at t=0, one ``start_measurement``
    event at ``warmup_ns`` (which outranks any same-time burst resume
    by sequence number), and one event per retired burst; a burst whose
    resume time falls past the window end never executes — its steps
    were already generated (accesses/TLB counted) but its busy time is
    not charged, matching the scalar truncation semantics.

    Two-speed structure: jobs that provably retire strictly inside the
    measurement window take a batched path (counters updated per job;
    ``now``/busy time still advanced burst-by-burst, because those are
    sequential float folds).  Jobs that might cross ``warmup`` or the
    window end replay the scalar per-burst order exactly.  Workloads
    exposing ``plan_compute_block`` are planned ``PLAN_BLOCK_STEPS``
    steps at a time in one numpy pass; others are planned per job via
    :meth:`~repro.workloads.base.Workload.plan_steps`.
    """
    from repro.core.runner import TIME_QUANTUM_NS

    machine = runner.machine
    engine = machine.engine
    scale = runner.config.scale
    warmup = scale.warmup_ns
    end = warmup + scale.measurement_ns
    flat = machine.flat_dram_latency_ns
    tlb_p = runner._tlb_miss_probability
    walk_ns = runner._flat_walk_ns
    quantum = TIME_QUANTUM_NS
    workload = runner.workload
    plan = workload.plan_steps
    plan_block = getattr(workload, "plan_compute_block", None)
    runner._vector_tlb_rng = BatchedRandom(runner._rng)
    rng_take = runner._vector_tlb_rng.take
    # classify() vetted a closed-loop single-core run with no tracer:
    # _next_job always mints a fresh job (queues stay empty) and
    # _finish_job's live-set bookkeeping is unobservable (nothing
    # cancels or censors closed-loop jobs), so both are inlined here.
    # The bound tracker methods re-check the measurement flag / window
    # themselves, exactly as the runner methods would.
    make_job = workload.make_job
    finish_job = runner._finish_job
    service_record = runner.service_latency.record
    response_record = runner.response_latency.record
    record_completion = runner.throughput.record_completion
    completed_incr = runner._jobs_completed_count.incr
    advance = engine.advance_batch
    vstats = _STATS

    vstats["fused_runs"] += 1
    now = engine.now
    delta_events = 1  # the core's spawn resume pops at t=0
    measuring = False
    jobs_done = 0
    steps_done = 0
    epochs_done = 0
    # Shadow accumulators, written back at the measurement boundary
    # (the snapshot _start_measurement takes) and at end of run.  The
    # float adds happen in scalar order; only the attribute traffic is
    # batched.  TLB misses are integer counts, so one deferred
    # Counter.add at end of run equals the scalar per-miss increments.
    busy_ns = runner._busy_ns
    accesses = runner._accesses
    tlb_misses = 0
    # Per-job planned entries: (d1, miss_flags, tlb_total).  Burst
    # boundaries are scanned lazily at pop time so jobs planned past
    # the window end (a block always overshoots) cost no python scan;
    # per-burst step/miss counts are only materialized (scan_bursts)
    # for jobs that might cross a window boundary.
    planned: Deque[Tuple[memoryview, np.ndarray, int]] = deque()
    fast_end = end - _FAST_PATH_GUARD_NS
    block_jobs = PLAN_PROBE_JOBS

    while True:
        job = make_job()
        job.arrived_at = now
        job.started_at = now
        if plan_block is not None:
            if not planned:
                comp, steps_per_job = plan_block(block_jobs)
                block_jobs = max(PLAN_PROBE_JOBS,
                                 PLAN_BLOCK_STEPS // steps_per_job)
                missed = rng_take(comp.shape[0]) < tlb_p
                # memoryview: zero-copy slices whose elements read back
                # as plain Python floats (iteration matches a tolist'd
                # list bit-for-bit without paying the conversion).
                d1_block = memoryview(comp + np.where(missed, walk_ns,
                                                      0.0))
                tlb_totals = missed.reshape(-1, steps_per_job) \
                                   .sum(axis=1).tolist()
                for j, tlb_total in enumerate(tlb_totals):
                    a = j * steps_per_job
                    b = a + steps_per_job
                    # miss flags stay an ndarray view; only crossing
                    # jobs (scan_bursts rescan) pay the tolist.
                    planned.append((d1_block[a:b], missed[a:b],
                                    tlb_total))
            d1, miss_flags, tlb_total = planned.popleft()
            durations = scan_durations(d1, flat, quantum)
            num_steps = len(d1)
            step_counts = None
        else:
            comp, _pages, _writes = plan(job)
            num_steps = len(comp)
            d1, miss_flags = step_deltas(comp, rng_take(num_steps),
                                         tlb_p, walk_ns)
            durations, step_counts, tlb_counts = scan_bursts(
                d1, miss_flags, flat, quantum
            )
            tlb_total = sum(tlb_counts)
        jobs_done += 1
        steps_done += num_steps
        epochs_done += len(durations)

        if measuring and now + sum(durations) <= fast_end:
            # Interior job: every burst retires strictly inside the
            # window, so counters batch per job; now/busy stay
            # burst-sequential (float fold order is observable).  The
            # engine clock is stored directly; the event tally is
            # settled in one advance_batch at end of run (nothing
            # reads it mid-run on this vetted shape).
            accesses += num_steps
            tlb_misses += tlb_total
            for duration in durations:
                now += duration
                busy_ns += duration
            delta_events += len(durations)
            engine._now = now
            service_record(now - job.started_at)
            response_record(now - job.arrived_at)
            record_completion()
            completed_incr()
            continue

        # Boundary-exact path: warmup / window-end crossing candidates
        # replay the scalar per-burst order.
        if step_counts is None:
            durations, step_counts, tlb_counts = scan_bursts(
                d1, miss_flags.tolist(), flat, quantum
            )
        truncated = False
        for k in range(len(durations)):
            # Burst k's steps are generated (counters bumped) before
            # its resume is "scheduled" — scalar order.
            accesses += step_counts[k]
            tlb_misses += tlb_counts[k]
            duration = durations[k]
            resume_at = now + duration
            if not measuring and resume_at >= warmup:
                # start_measurement was scheduled before any burst
                # resume, so at equal times it fires first.
                advance(warmup, delta_events + 1)
                delta_events = 0
                runner._busy_ns = busy_ns
                runner._accesses = accesses
                runner._start_measurement()
                measuring = True
            if resume_at > end:
                truncated = True
                break
            now = resume_at
            delta_events += 1
            busy_ns += duration
        if truncated:
            # The in-flight job the window cut off: the only live-set
            # entry a closed-loop scalar run ends with (feeds the
            # unfinished/inflight/backlog result fields).
            runner._live_jobs[job.job_id] = job
            break
        engine._now = now
        finish_job(job)
    if not measuring:  # pragma: no cover - warmup shorter than any job
        advance(warmup, delta_events + 1)
        delta_events = 0
        runner._busy_ns = busy_ns
        runner._accesses = accesses
        runner._start_measurement()
    advance(end, delta_events)
    runner._busy_ns = busy_ns
    runner._accesses = accesses
    if tlb_misses:
        runner._tlb_miss_count.add(tlb_misses)
    vstats["batched_jobs"] += jobs_done
    vstats["batched_steps"] += steps_done
    vstats["epochs"] += epochs_done
