"""Unit tests for counters, histograms, and trackers."""

import pytest

from repro.errors import ReproError
from repro.stats import (
    CounterSet,
    ExactReservoir,
    LatencyTracker,
    LogHistogram,
    ThroughputTracker,
    percentile,
)
from repro.units import SECOND


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 0.99) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        samples = list(range(100))
        assert percentile(samples, 0.0) == 0
        assert percentile(samples, 1.0) == 99

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            percentile([], 0.5)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ReproError):
            percentile([1.0], 1.5)


class TestExactReservoir:
    def test_basic_stats(self):
        res = ExactReservoir()
        res.extend([3.0, 1.0, 2.0])
        assert res.count == 3
        assert res.mean() == pytest.approx(2.0)
        assert res.min() == 1.0
        assert res.max() == 3.0
        assert res.percentile(0.5) == 2.0

    def test_unsorted_input_is_handled(self):
        res = ExactReservoir()
        res.extend([5.0, 4.0, 3.0, 2.0, 1.0])
        assert res.samples() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_empty_raises(self):
        res = ExactReservoir()
        with pytest.raises(ReproError):
            res.mean()


class TestLogHistogram:
    def test_percentile_within_relative_error(self):
        hist = LogHistogram(min_value=1.0, precision=64)
        samples = [float(i) for i in range(1, 10001)]
        for sample in samples:
            hist.record(sample)
        exact = percentile(samples, 0.99)
        approx = hist.percentile(0.99)
        assert abs(approx - exact) / exact < 0.03

    def test_mean_is_exact(self):
        hist = LogHistogram()
        for value in [10.0, 20.0, 30.0]:
            hist.record(value)
        assert hist.mean() == pytest.approx(20.0)

    def test_max_never_exceeded(self):
        hist = LogHistogram()
        hist.record(123.0)
        assert hist.percentile(1.0) <= 123.0

    def test_merge(self):
        left, right = LogHistogram(), LogHistogram()
        left.record(10.0)
        right.record(1000.0)
        left.merge(right)
        assert left.count == 2
        assert left.max() == 1000.0

    def test_merge_mismatched_raises(self):
        with pytest.raises(ReproError):
            LogHistogram(precision=32).merge(LogHistogram(precision=64))

    def test_invalid_params_raise(self):
        with pytest.raises(ReproError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ReproError):
            LogHistogram(precision=1)


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet("test")
        counters.add("hits")
        counters.add("hits", 2)
        assert counters["hits"] == 3
        assert counters["missing"] == 0

    def test_ratio(self):
        counters = CounterSet()
        counters.add("misses", 5)
        counters.add("accesses", 100)
        assert counters.ratio("misses", "accesses") == pytest.approx(0.05)
        assert counters.ratio("misses", "nonexistent") == 0.0

    def test_negative_add_raises(self):
        with pytest.raises(ReproError):
            CounterSet().add("x", -1)

    def test_merge(self):
        left, right = CounterSet(), CounterSet()
        left.add("a", 1)
        right.add("a", 2)
        right.add("b", 3)
        left.merge(right)
        assert left["a"] == 3
        assert left["b"] == 3


class TestTrackers:
    def test_latency_tracker_respects_window(self):
        tracker = LatencyTracker()
        tracker.record(100.0)  # warmup sample, dropped
        tracker.start_measurement()
        tracker.record(200.0)
        tracker.stop_measurement()
        tracker.record(300.0)  # post-window, dropped
        assert tracker.count == 1
        assert tracker.p50() == 200.0

    def test_record_always_ignores_window(self):
        tracker = LatencyTracker()
        tracker.record_always(100.0)  # no window open
        tracker.start_measurement()
        tracker.stop_measurement()
        tracker.record_always(200.0)  # window closed
        assert tracker.count == 1
        assert tracker.p50() == 200.0

    def test_restart_does_not_leak_prior_window(self):
        tracker = LatencyTracker()
        tracker.start_measurement()
        tracker.record(100.0)
        tracker.stop_measurement()
        tracker.start_measurement()  # fresh window
        tracker.record(200.0)
        tracker.stop_measurement()
        assert tracker.count == 1
        assert tracker.p50() == 200.0

    def test_start_measurement_discards_warmup_record_always(self):
        tracker = LatencyTracker()
        tracker.record_always(5.0)  # warmup debugging sample
        tracker.start_measurement()
        assert tracker.count == 0

    def test_restart_resets_histogram_tracker_too(self):
        tracker = LatencyTracker(exact=False)
        tracker.start_measurement()
        tracker.record(100.0)
        tracker.start_measurement()
        tracker.record(1000.0)
        assert tracker.count == 1
        assert tracker.mean() == pytest.approx(1000.0)

    def test_throughput_rate(self):
        tracker = ThroughputTracker()
        tracker.start_measurement(0.0)
        for _ in range(500):
            tracker.record_completion()
        tracker.stop_measurement(0.5 * SECOND)
        assert tracker.rate_per_second() == pytest.approx(1000.0)

    def test_throughput_window_misuse_raises(self):
        tracker = ThroughputTracker()
        with pytest.raises(ReproError):
            tracker.stop_measurement(1.0)
        with pytest.raises(ReproError):
            tracker.rate_per_second()


class TestSampling:
    def _make(self, values):
        from repro.stats import summarize
        return summarize(values)

    def test_summarize_mean_and_interval(self):
        from repro.stats import summarize
        m = summarize([10.0, 12.0, 11.0, 9.0, 13.0])
        assert m.mean == pytest.approx(11.0)
        low, high = m.interval
        assert low < 11.0 < high
        assert m.count == 5
        assert "n=5" in m.describe()

    def test_identical_samples_zero_width(self):
        from repro.stats import summarize
        m = summarize([5.0, 5.0, 5.0])
        assert m.half_width == 0.0
        assert m.relative_error == 0.0

    def test_needs_two_samples(self):
        from repro.stats import summarize
        with pytest.raises(ReproError):
            summarize([1.0])

    def test_t_critical_values(self):
        from repro.stats import t_critical_95
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)
        assert t_critical_95(100) == pytest.approx(1.96)
        with pytest.raises(ReproError):
            t_critical_95(0)

    def test_measure_runs_seeds(self):
        from repro.stats import measure
        seen = []

        def experiment(seed):
            seen.append(seed)
            return float(seed)

        m = measure(experiment, num_samples=4, base_seed=100)
        assert seen == [100, 101, 102, 103]
        assert m.mean == pytest.approx(101.5)

    def test_measure_until_stops_early_on_tight_ci(self):
        from repro.stats import measure_until
        calls = []

        def experiment(seed):
            calls.append(seed)
            return 100.0 + (seed % 2) * 0.001  # nearly constant

        m = measure_until(experiment, target_relative_error=0.01,
                          min_samples=3, max_samples=15)
        assert len(calls) == 3
        assert m.relative_error <= 0.01

    def test_measure_until_respects_budget(self):
        from repro.stats import measure_until
        import random as _random
        rng = _random.Random(0)

        def noisy(seed):
            return rng.uniform(0, 1000)  # hopeless variance

        m = measure_until(noisy, target_relative_error=0.001,
                          min_samples=3, max_samples=6)
        assert m.count == 6

    def test_invalid_parameters(self):
        from repro.stats import measure, measure_until
        with pytest.raises(ReproError):
            measure(lambda seed: 0.0, num_samples=1)
        with pytest.raises(ReproError):
            measure_until(lambda seed: 0.0, target_relative_error=1.5)


class TestExactReservoirRunningSum:
    """The O(1) running-sum mean must survive sort/extend interleaving."""

    def test_mean_after_extend_following_percentile(self):
        res = ExactReservoir()
        res.extend([5.0, 1.0, 3.0])
        assert res.percentile(0.5) == 3.0  # forces a sort
        res.extend([11.0, 2.0])
        assert res.mean() == pytest.approx(22.0 / 5)

    def test_mean_matches_naive_sum_after_resort(self):
        values = [7.5, 0.25, 3.125, 9.0, 1.0, 1.0, 6.5]
        res = ExactReservoir()
        res.extend(values[:3])
        res.percentile(0.9)
        res.extend(values[3:])
        res.percentile(0.9)  # re-sorts and re-syncs the sum
        assert res.mean() == sum(sorted(values)) / len(values)

    def test_interleaved_record_and_stats(self):
        res = ExactReservoir()
        total = 0.0
        for index in range(50):
            value = float((index * 31) % 17)
            res.record(value)
            total += value
            if index % 7 == 0:
                res.min(), res.max()  # sorting must not corrupt the sum
            assert res.mean() == pytest.approx(total / (index + 1))


class TestLogHistogramKeyCache:
    """percentile() walks a cached sorted key list; the cache must be
    invalidated whenever record()/merge() introduces a new bucket."""

    def test_record_into_new_bucket_after_percentile(self):
        hist = LogHistogram()
        hist.record(10.0)
        hist.record(100.0)
        assert hist.percentile(0.5) < 200.0  # primes the cache
        hist.record(10_000.0)  # brand-new bucket
        p100 = hist.percentile(1.0)
        assert abs(p100 - 10_000.0) / 10_000.0 < 0.05

    def test_merge_into_new_bucket_after_percentile(self):
        left = LogHistogram()
        left.record(10.0)
        left.percentile(0.5)  # primes the cache
        right = LogHistogram()
        right.record(5_000.0)
        left.merge(right)
        p100 = left.percentile(1.0)
        assert abs(p100 - 5_000.0) / 5_000.0 < 0.05

    def test_cached_percentiles_match_fresh_histogram(self):
        import random as _random
        rng = _random.Random(7)
        cached = LogHistogram()
        values = []
        for round_index in range(40):
            value = rng.uniform(1.0, 1e6)
            values.append(value)
            cached.record(value)
            if round_index % 3 == 0:
                cached.percentile(0.9)  # interleave cache priming
        fresh = LogHistogram()
        for value in values:
            fresh.record(value)
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert cached.percentile(fraction) == fresh.percentile(fraction)
