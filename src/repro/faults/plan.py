"""Deterministic per-read fault plan for the flash device.

The :class:`FaultPlan` is the single authority on *what goes wrong*:
given a plane and logical page it draws a :class:`ReadOutcome` (retry
rounds, uncorrectable, transient stall, slow-plane multiplier) from its
**own** seeded RNG streams — never the simulation RNG — so enabling or
reseeding faults cannot perturb workload or scheduler randomness, and
two runs with the same fault seed inject identical fault sequences.

Wear coupling reads the FTL's per-block erase counters at draw time:
pages sitting on heavily-erased blocks see a proportionally higher
effective RBER, which ties the error model to the GC/wear machinery
already in :mod:`repro.flash.ftl`.

The plan also tracks per-plane consecutive hard faults (timeouts and
uncorrectable reads).  Once a plane crosses
``plane_failure_threshold`` it is marked *failing* and the device
serves its reads through the degraded mirror path — the graceful-
degradation mode the backside controller's reissue loop relies on to
terminate.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.config.system import FaultConfig
from repro.faults.model import (
    ReadOutcome,
    effective_rber,
    page_failure_probability,
)
from repro.stats import CounterSet

#: Shared clean outcome: most reads draw no fault, so the common case
#: allocates nothing (callers never mutate outcomes).
_CLEAN = ReadOutcome()


class FaultPlan:
    """Seeded fault decisions for one :class:`FlashDevice`."""

    def __init__(self, config: FaultConfig, num_planes: int,
                 ftl=None) -> None:
        config.validate()
        self.config = config
        self.num_planes = num_planes
        self.ftl = ftl
        # Two independent streams: topology (drawn once, at build time)
        # and the per-read stream.  String seeding keeps both stable
        # across processes (no hash randomization).
        self._rng = random.Random(f"repro-faults-reads-{config.seed}")
        topology = random.Random(f"repro-faults-topology-{config.seed}")
        self.slow_planes = frozenset(
            plane for plane in range(num_planes)
            if topology.random() < config.slow_plane_fraction
        )
        self._consecutive_failures: List[int] = [0] * num_planes
        self._failing: List[bool] = [False] * num_planes
        # (erase_count, retry_round) -> page failure probability.
        self._p_fail_cache: Dict[Tuple[int, int], float] = {}
        self.stats = CounterSet("faults")

    # -- queries ---------------------------------------------------------------

    def plane_failing(self, plane_index: int) -> bool:
        """True once ``plane_index`` crossed the failure threshold."""
        return self._failing[plane_index]

    def failing_planes(self) -> List[int]:
        return [i for i, failing in enumerate(self._failing) if failing]

    def page_failure_probability(self, erase_count: int,
                                 retry_round: int) -> float:
        """Cached ECC page-failure probability for one sense round."""
        key = (erase_count, retry_round)
        cached = self._p_fail_cache.get(key)
        if cached is None:
            cfg = self.config
            rate = effective_rber(cfg.rber, erase_count,
                                  cfg.wear_rber_factor, retry_round,
                                  cfg.retry_rber_scale)
            cached = page_failure_probability(
                rate, cfg.codewords_per_page, cfg.codeword_bits,
                cfg.ecc_correctable_bits)
            self._p_fail_cache[key] = cached
        return cached

    # -- the draw --------------------------------------------------------------

    def read_outcome(self, plane_index: int,
                     logical_page: int) -> ReadOutcome:
        """Decide what this read experiences; updates failure tracking.

        Hard faults (transient stalls, uncorrectable pages) are
        recorded against the plane *at draw time* — the controller's
        error interrupt is what teaches the failure tracker — so a
        reissue storm against a dying plane converges onto the
        degraded mirror path within ``plane_failure_threshold``
        attempts instead of racing in-flight completions.
        """
        cfg = self.config
        rng = self._rng
        self.stats.add("draws")

        if cfg.timeout_probability > 0.0 \
                and rng.random() < cfg.timeout_probability:
            self.stats.add("timeouts")
            self._record_failure(plane_index)
            return ReadOutcome(
                sense_multiplier=self._sense_multiplier(plane_index),
                timeout_stall=True,
            )

        retry_rounds = 0
        uncorrectable = False
        if cfg.rber > 0.0:
            erase_count = self._erase_count(logical_page)
            if rng.random() < self.page_failure_probability(erase_count, 0):
                # First sense failed ECC: walk the retry table.
                uncorrectable = True
                for round_index in range(1, cfg.read_retry_max_rounds + 1):
                    retry_rounds = round_index
                    p_fail = self.page_failure_probability(
                        erase_count, round_index)
                    if rng.random() >= p_fail:
                        uncorrectable = False
                        break

        multiplier = self._sense_multiplier(plane_index)
        if uncorrectable:
            self.stats.add("uncorrectable")
            self._record_failure(plane_index)
        else:
            if retry_rounds:
                self.stats.add("corrected_by_retry")
            self._record_success(plane_index)
        if not retry_rounds and not uncorrectable and multiplier == 1.0:
            return _CLEAN
        return ReadOutcome(
            sense_multiplier=multiplier,
            retry_rounds=retry_rounds,
            uncorrectable=uncorrectable,
        )

    # -- internals -------------------------------------------------------------

    def _sense_multiplier(self, plane_index: int) -> float:
        if plane_index in self.slow_planes:
            return self.config.slow_plane_multiplier
        return 1.0

    def _erase_count(self, logical_page: int) -> int:
        if self.ftl is None or self.config.wear_rber_factor == 0.0:
            return 0
        return self.ftl.erase_count_of(logical_page)

    def mark_plane_failing(self, plane_index: int) -> None:
        """Declare a plane failing (degraded mirror reads from now on).

        Called by the backside controller when one request's reissue
        chain crosses the failure threshold — the consecutive-failure
        counter alone can be reset by interleaved successful reads on
        the same plane, but a single page failing attempt after attempt
        is exactly the evidence a real controller acts on.
        """
        if self.config.plane_failure_threshold <= 0:
            return
        if not self._failing[plane_index]:
            self._failing[plane_index] = True
            self.stats.add("planes_failed")

    def _record_failure(self, plane_index: int) -> None:
        threshold = self.config.plane_failure_threshold
        if threshold <= 0:
            return
        count = self._consecutive_failures[plane_index] + 1
        self._consecutive_failures[plane_index] = count
        if count >= threshold:
            self.mark_plane_failing(plane_index)

    def _record_success(self, plane_index: int) -> None:
        if self._consecutive_failures[plane_index]:
            self._consecutive_failures[plane_index] = 0

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.config.seed} "
                f"rber={self.config.rber:g} "
                f"slow_planes={len(self.slow_planes)} "
                f"failing={len(self.failing_planes())}>")
