"""Discrete-event simulation kernel.

The kernel is deliberately small and dependency-free: an event queue
ordered by ``(time, sequence)`` plus a generator-based *process* layer
in :mod:`repro.sim.process`.  All hardware components in the library
are built on top of these two primitives.

Times are floats in nanoseconds (see :mod:`repro.units`).  Ties are
broken by insertion order, which makes runs fully deterministic for a
given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

Callback = Callable[..., None]


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at` and can be cancelled with
    :meth:`Engine.cancel`.  A cancelled event stays in the heap but is
    skipped when popped.  An event that has already executed is marked
    ``fired``; cancelling it afterwards is a protocol error.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callback, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else (" fired" if self.fired else "")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.1f} #{self.seq} {name}{state}>"


class Engine:
    """The event loop.

    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(10.0, fired.append, "a")
    >>> _ = engine.schedule(5.0, fired.append, "b")
    >>> engine.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._live_events = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callback, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.

        Cancelling twice is an error, and so is cancelling an event
        that already executed: the event was popped from the heap and
        its live-count slot reclaimed, so decrementing again would
        corrupt :attr:`pending_events`.
        """
        if event.fired:
            raise SimulationError(
                f"cannot cancel an event that already fired: {event!r}"
            )
        if event.cancelled:
            raise SimulationError(f"event already cancelled: {event!r}")
        event.cancelled = True
        self._live_events -= 1

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none left."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._live_events -= 1
            event.fired = True
            self._now = event.time
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulation time ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine.run() re-entered")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._live_events -= 1
                event.fired = True
                self._now = event.time
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return self._live_events

    def __repr__(self) -> str:
        return f"<Engine t={self._now:.1f} pending={self.pending_events}>"
