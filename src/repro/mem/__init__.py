"""On-chip SRAM cache hierarchy models."""

from repro.mem.cache import CacheHierarchy, SramCache

__all__ = ["CacheHierarchy", "SramCache"]
