"""Corner-case tests for the frontside/backside controllers: queue
backpressure, evict-buffer stalls, set-conflict retries."""

import dataclasses

import pytest

from repro.config import DramCacheConfig, FlashConfig
from repro.dramcache import DramCache
from repro.flash import FlashDevice
from repro.sim import Engine, spawn
from repro.units import MS, US


def make_cache(cache_pages=8, assoc=4, dataset_pages=512,
               **cache_overrides):
    engine = Engine()
    flash = FlashDevice(
        engine,
        FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                    pages_per_block=16, overprovisioning=0.5),
        dataset_pages,
    )
    config = dataclasses.replace(
        DramCacheConfig(associativity=assoc), **cache_overrides
    )
    cache = DramCache(engine, config, cache_pages, flash)
    return engine, cache, flash


class TestBcQueueBackpressure:
    def test_fc_stalls_counted_when_queue_tiny(self):
        engine, cache, flash = make_cache(miss_queue_entries=1,
                                          msr_entries=1)
        # Burst of distinct misses: the 1-entry queue + 1-entry MSR
        # cannot absorb them synchronously.
        for page in range(40, 52):
            result = cache.access(page)
            assert not result.hit
        engine.run()
        assert cache.frontside.stats["bc_queue_stalls"] > 0
        # Every miss still completes (installs == unique misses).
        assert cache.backside.stats["installs"] == 12


class TestEvictBufferStalls:
    def test_dirty_eviction_burst_fills_buffer(self):
        # 1-slot evict buffer + slow writebacks: the second dirty
        # eviction must wait for the first writeback to finish.
        engine, cache, flash = make_cache(cache_pages=4, assoc=4,
                                          evict_buffer_entries=1)

        def driver():
            # Fill the single set with dirty pages.
            for page in range(4):
                result = cache.access(page, is_write=True)
                yield result.completion
            # Two more misses evict two dirty victims back to back.
            first = cache.access(4)
            yield first.completion
            second = cache.access(5)
            yield second.completion
            yield 5.0 * MS  # drain writebacks

        spawn(engine, driver())
        engine.run()
        assert cache.backside.stats["dirty_writebacks"] == 2
        assert flash.stats["writes"] == 2

    def test_clean_evictions_skip_the_buffer(self):
        engine, cache, flash = make_cache(cache_pages=4, assoc=4,
                                          evict_buffer_entries=1)

        def driver():
            for page in range(4):
                result = cache.access(page)  # clean fills
                yield result.completion
            result = cache.access(4)
            yield result.completion

        spawn(engine, driver())
        engine.run()
        assert cache.backside.stats["dirty_writebacks"] == 0
        assert flash.stats["writes"] == 0


class TestSetConflictRetries:
    def test_more_misses_than_ways_in_one_set(self):
        # One set, 2 ways, 4 concurrent misses to it: reservations run
        # out and the BC must retry until refills land.
        engine, cache, flash = make_cache(cache_pages=2, assoc=2)
        completions = []

        def thread(page):
            result = cache.access(page)
            assert not result.hit
            yield result.completion
            completions.append(page)

        for page in (10, 11, 12, 13):  # all map to set 0 (1 set)
            spawn(engine, thread(page))
        engine.run()
        assert sorted(completions) == [10, 11, 12, 13]
        assert cache.backside.stats["set_conflict_retries"] > 0


class TestCoalescingWindow:
    def test_miss_then_hit_after_install_then_miss_again(self):
        engine, cache, flash = make_cache(cache_pages=4, assoc=4)
        history = []

        def driver():
            first = cache.access(100)
            history.append(first.hit)
            yield first.completion
            second = cache.access(100)
            history.append(second.hit)
            # Evict page 100 by filling the set.
            for page in (104, 108, 112, 116):
                result = cache.access(page)
                if not result.hit:
                    yield result.completion
            third = cache.access(100)
            history.append(third.hit)
            if not third.hit:
                yield third.completion

        spawn(engine, driver())
        engine.run()
        assert history == [False, True, False]
        assert flash.stats["reads"] >= 6


class TestMissRequestAccounting:
    def test_fill_latency_tracked(self):
        engine, cache, flash = make_cache()

        def driver():
            result = cache.access(50)
            yield result.completion

        spawn(engine, driver())
        engine.run()
        assert cache.backside.fill_latency.count == 1
        assert cache.backside.fill_latency.mean() > 45.0 * US

    def test_outstanding_drops_to_zero(self):
        engine, cache, flash = make_cache()
        for page in range(60, 70):
            cache.access(page)
        engine.run()
        assert cache.outstanding_misses == 0
