"""Ablation: footprint-cache refills (the Sec. II-A bandwidth option).

Fetching only the predicted footprint of a page cuts the flash refill
bandwidth Equation 1 charges — the knob the paper offers for scaling to
higher core counts under a fixed PCIe budget.
"""

import dataclasses

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.workloads import make_workload


def sweep(scale_name):
    scale = resolve_scale(scale_name)
    outcomes = {}
    for enabled in (False, True):
        config = build_config("astriflash", scale)
        config.dram_cache = dataclasses.replace(
            config.dram_cache, footprint_enabled=enabled,
            footprint_region_pages=32, footprint_safety_blocks=4,
        )
        workload = make_workload("rbtree", scale.dataset_pages, seed=42,
                                 **scale.workload_kwargs())
        runner = Runner(config, workload)
        result = runner.run()
        flash = runner.machine.flash
        outcomes["footprint" if enabled else "full-page"] = {
            "throughput": result.throughput_jobs_per_s,
            "pcie_bytes": flash.pcie.stats["bytes"],
            "reads": flash.stats["reads"],
            "underfetch_rate": (
                runner.machine.dram_cache.backside.footprint.underfetch_rate()
                if enabled else 0.0
            ),
        }
    return outcomes


def test_ablation_footprint(benchmark, harness_scale):
    outcomes = run_once(benchmark, sweep, harness_scale)
    print("\nfootprint-cache sweep:")
    for name, data in outcomes.items():
        per_read = data["pcie_bytes"] / max(1, data["reads"])
        print(f"  {name:10s} -> {data['throughput']:10,.0f} jobs/s  "
              f"{per_read:6.0f} B/refill  "
              f"underfetch={data['underfetch_rate']:.1%}")

    full = outcomes["full-page"]
    foot = outcomes["footprint"]
    # The pointer-chasing RBT touches few blocks per page: footprint
    # refills move far fewer bytes per read.
    assert foot["pcie_bytes"] / max(1, foot["reads"]) < \
        0.8 * full["pcie_bytes"] / max(1, full["reads"])
    # Throughput is not hurt (bandwidth was not the bottleneck here).
    assert foot["throughput"] > 0.7 * full["throughput"]
