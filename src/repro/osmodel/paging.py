"""OS demand-paging path (the OS-Swap baseline, Sec. II-C / Fig. 4a).

Every page fault runs the kernel storage stack (~5 us), reads the page
from flash, then installs it under kernel synchronization: page-table
updates are serialized on a global lock and every eviction triggers a
broadcast TLB shootdown whose latency grows with the core count.  Those
two serial costs are what make OS paging fundamentally unscalable
(Fig. 2) — the model reproduces them structurally rather than as a
single fudge factor.

Concurrent faults on the same page coalesce on a per-page lock, like
the kernel's page-lock wait path.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config.system import OsConfig
from repro.flash.device import FlashDevice
from repro.osmodel.resident import ResidentSetManager
from repro.sim import Engine, Server, Signal, spawn
from repro.stats import CounterSet, LatencyTracker
from repro.vm.shootdown import TlbShootdownModel


class DemandPager:
    """The kernel's fault-to-mapped pipeline."""

    def __init__(self, engine: Engine, config: OsConfig,
                 resident: ResidentSetManager, flash: FlashDevice,
                 num_cores: int) -> None:
        self.engine = engine
        self.config = config
        self.resident = resident
        self.flash = flash
        self.shootdown = TlbShootdownModel(config, num_cores)
        # Kernel page-table lock: mapping updates serialize machine-wide.
        self._page_table_lock = Server(engine, capacity=1, name="pt-lock")
        # Faults already in flight (page -> completion signal).
        self._pending: Dict[int, Signal] = {}
        # LATR-style batching: evictions accumulated toward the next
        # amortized broadcast.
        self._unbatched_evictions = 0
        self.stats = CounterSet("demand-pager")
        self.fault_latency = LatencyTracker(exact=False, name="fault-latency")
        self.fault_latency.start_measurement()

    def access(self, page: int, is_write: bool = False) -> bool:
        """Fast path: residency check.  True = mapped, no fault."""
        return self.resident.lookup(page, is_write)

    def pending_fault(self, page: int) -> Optional[Signal]:
        """Signal of an already-in-flight fault for ``page``, if any."""
        return self._pending.get(page)

    def fault(self, page: int, is_write: bool = False):
        """Process generator handling one page fault end to end.

        The caller (a kernel thread on some core) runs this and is
        blocked for its whole duration; overlapping work on the core
        requires an OS context switch, charged by the core loop.
        """
        start = self.engine.now
        self.stats.add("faults")

        existing = self._pending.get(page)
        if existing is not None:
            # Another thread is already faulting this page in: wait on
            # the page lock instead of issuing duplicate I/O.
            self.stats.add("coalesced_faults")
            yield existing
            return

        done = Signal(self.engine, f"fault:{page}")
        self._pending[page] = done
        try:
            # Kernel entry, page-cache check, storage stack, NVMe doorbell.
            yield self.config.page_fault_kernel_ns
            read_signal = self.flash.read(page)
            yield read_signal

            # Install under the global page-table lock.
            grant = self._page_table_lock.acquire()
            if grant is not None:
                self.stats.add("lock_waits")
                yield grant
            victim = self.resident.insert(page, dirty=is_write)
            if victim is not None:
                victim_page, victim_dirty = victim
                # Unmapping the victim requires a broadcast shootdown,
                # held across the lock: this is the scalability killer.
                # With LATR-style batching (the paper's [46]) several
                # unmappings share one amortized broadcast.
                if self.config.batched_shootdowns:
                    self._unbatched_evictions += 1
                    if self._unbatched_evictions >= \
                            self.config.shootdown_batch_size:
                        yield self.shootdown.latency_ns(
                            batched_pages=self._unbatched_evictions
                        )
                        self.stats.add("shootdowns")
                        self.stats.add("batched_pages",
                                       self._unbatched_evictions)
                        self._unbatched_evictions = 0
                else:
                    yield self.shootdown.latency_ns()
                    self.stats.add("shootdowns")
                if victim_dirty:
                    spawn(self.engine, self._writeback(victim_page),
                          name=f"swap-out:{victim_page}")
            self._page_table_lock.release()
        finally:
            self._pending.pop(page, None)
        self.fault_latency.record(self.engine.now - start)
        done.fire()

    def _writeback(self, page: int):
        write_signal = self.flash.write(page)
        yield write_signal
        self.stats.add("writebacks")

    # -- derived metrics ------------------------------------------------------

    def average_fault_latency_ns(self) -> float:
        if self.fault_latency.count == 0:
            return (self.config.page_fault_kernel_ns
                    + self.flash.config.read_latency_ns)
        return self.fault_latency.mean()
