"""Tests for the profiling subsystem (``python -m repro profile``)."""

import cProfile
import json
import os
import pstats

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.perf import (
    Hotspot,
    ProfileReport,
    hotspots_from_stats,
    profile_experiment,
)
from repro.sim import Engine
from repro.sim.engine import total_events_executed


def _burn(iterations: int) -> int:
    total = 0
    for index in range(iterations):
        total += index * index
    return total


class TestHotspotExtraction:
    def test_hotspots_ranked_by_internal_time(self):
        profiler = cProfile.Profile()
        profiler.enable()
        _burn(200_000)
        profiler.disable()
        spots = hotspots_from_stats(pstats.Stats(profiler), top=5)
        assert spots
        assert all(isinstance(spot, Hotspot) for spot in spots)
        # Sorted by tottime, descending.
        times = [spot.total_s for spot in spots]
        assert times == sorted(times, reverse=True)
        assert any("_burn" in spot.function for spot in spots)

    def test_top_limits_rows(self):
        profiler = cProfile.Profile()
        profiler.enable()
        _burn(1000)
        profiler.disable()
        spots = hotspots_from_stats(pstats.Stats(profiler), top=1)
        assert len(spots) == 1


class TestProfileReport:
    def _report(self):
        return ProfileReport(
            experiment="fig9", scale="quick", wall_seconds=1.5,
            total_calls=1234, events_executed=3000,
            events_per_second=2000.0,
            hotspots=[Hotspot("a.py:1(f)", 10, 0.5, 1.0)],
        )

    def test_format_text_mentions_throughput(self):
        text = self._report().format_text()
        assert "fig9" in text
        assert "2,000 events/s" in text
        assert "a.py:1(f)" in text

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        self._report().write_json(str(path))
        data = json.loads(path.read_text())
        assert data["experiment"] == "fig9"
        assert data["events_per_second"] == 2000.0
        assert data["hotspots"][0]["function"] == "a.py:1(f)"

    def test_json_carries_schema_stamp(self, tmp_path):
        from repro.perf import PROFILE_SCHEMA_VERSION

        path = tmp_path / "BENCH_kernel.json"
        self._report().write_json(str(path))
        data = json.loads(path.read_text())
        assert data["schema_version"] == PROFILE_SCHEMA_VERSION
        assert "config_preset" in data


class TestProfileExperiment:
    def test_unknown_experiment_raises(self):
        with pytest.raises(ReproError):
            profile_experiment("nope")

    def test_invalid_top_raises(self):
        with pytest.raises(ReproError):
            profile_experiment("table1", top=0)

    def test_profiles_static_experiment(self):
        report = profile_experiment("table1", top=5)
        assert report.experiment == "table1"
        assert report.scale == "quick"
        assert report.total_calls > 0
        assert report.wall_seconds >= 0.0
        assert len(report.hotspots) <= 5

    def test_report_is_stamped_with_config_preset(self):
        from repro.perf import PROFILE_SCHEMA_VERSION

        report = profile_experiment("table1", top=1)
        assert report.schema_version == PROFILE_SCHEMA_VERSION
        assert report.config_preset == "quick"

    def test_cache_env_is_restored(self):
        saved = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = "1"
        try:
            profile_experiment("table1", top=3)
            assert os.environ["REPRO_CACHE"] == "1"
        finally:
            if saved is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = saved


class TestCli:
    def test_profile_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_kernel.json"
        assert main(["profile", "table1", "--top", "3",
                     "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "profile: table1" in captured
        data = json.loads(out.read_text())
        assert set(data) >= {"experiment", "events_per_second", "hotspots"}


def test_total_events_executed_tracks_engine_runs():
    before = total_events_executed()
    engine = Engine()
    for index in range(25):
        engine.schedule(float(index), lambda: None)
    engine.run()
    assert total_events_executed() - before == 25
